// SolverService tests: the §3.2 multi-path incremental solver — root solving,
// chained increments, *branching* the same parent into divergent constraint
// sets (the snapshot-tree payoff), model extraction, and lifecycle errors.

#include <gtest/gtest.h>

#include <vector>

#include "src/solver/cnf.h"
#include "src/solver/service.h"
#include "src/util/rng.h"

namespace lw {
namespace {

SolverServiceOptions SmallArena() {
  SolverServiceOptions options;
  options.tuning.arena_bytes = 16ull << 20;
  return options;
}

TEST(SolverServiceTest, RootSolve) {
  SolverService service(SmallArena());
  Cnf base;
  base.AddDimacsClause({1, 2});
  base.AddDimacsClause({-1, 2});
  auto outcome = service.SolveRoot(base);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->result.IsTrue());
  EXPECT_TRUE(SolverService::ModelBit(*outcome, 1));  // var 2 (0-based 1) forced true
}

TEST(SolverServiceTest, RootTwiceIsError) {
  SolverService service(SmallArena());
  Cnf base;
  base.AddDimacsClause({1});
  ASSERT_TRUE(service.SolveRoot(base).ok());
  EXPECT_EQ(service.SolveRoot(base).status().code(), ErrorCode::kBadState);
}

TEST(SolverServiceTest, ExtendBeforeRootIsError) {
  SolverService service(SmallArena());
  EXPECT_EQ(service.Extend(Checkpoint(), {}).status().code(), ErrorCode::kBadState);
}

TEST(SolverServiceTest, IncrementalChain) {
  // p: (a ∨ b); q1: ¬a; q2: ¬b — p ∧ q1 SAT, p ∧ q1 ∧ q2 UNSAT.
  SolverService service(SmallArena());
  Cnf base;
  base.AddDimacsClause({1, 2});
  auto root = service.SolveRoot(base);
  ASSERT_TRUE(root.ok());
  ASSERT_TRUE(root->result.IsTrue());

  auto step1 = service.Extend(root->token, {{MakeLit(0, true)}});  // ¬a
  ASSERT_TRUE(step1.ok());
  ASSERT_TRUE(step1->result.IsTrue());
  EXPECT_FALSE(SolverService::ModelBit(*step1, 0));
  EXPECT_TRUE(SolverService::ModelBit(*step1, 1));

  auto step2 = service.Extend(step1->token, {{MakeLit(1, true)}});  // ¬b
  ASSERT_TRUE(step2.ok());
  EXPECT_TRUE(step2->result.IsFalse());
}

TEST(SolverServiceTest, BranchingSameParent) {
  // The §3.2 killer feature: extend the *same* solved problem p with divergent
  // constraints; each branch sees p's state, not its sibling's.
  SolverService service(SmallArena());
  Cnf base;
  base.AddDimacsClause({1, 2});
  auto root = service.SolveRoot(base);
  ASSERT_TRUE(root.ok());

  auto left = service.Extend(root->token, {{MakeLit(0, true)}});   // ¬a → b
  auto right = service.Extend(root->token, {{MakeLit(1, true)}});  // ¬b → a
  ASSERT_TRUE(left.ok());
  ASSERT_TRUE(right.ok());
  ASSERT_TRUE(left->result.IsTrue());
  ASSERT_TRUE(right->result.IsTrue());
  EXPECT_TRUE(SolverService::ModelBit(*left, 1));
  EXPECT_TRUE(SolverService::ModelBit(*right, 0));

  // The sibling's ¬a must not leak into the right branch.
  auto right_deeper = service.Extend(right->token, {{MakeLit(0)}});  // assert a again: fine
  ASSERT_TRUE(right_deeper.ok());
  EXPECT_TRUE(right_deeper->result.IsTrue());

  // But the left branch plus `a` is UNSAT (it committed to ¬a).
  auto left_deeper = service.Extend(left->token, {{MakeLit(0)}});
  ASSERT_TRUE(left_deeper.ok());
  EXPECT_TRUE(left_deeper->result.IsFalse());
}

TEST(SolverServiceTest, UnsatBranchStaysExtensible) {
  // Even an UNSAT node parks a checkpoint; extending it stays UNSAT (the
  // solver is permanently unsatisfiable) and must not crash the service.
  SolverService service(SmallArena());
  Cnf base;
  base.AddDimacsClause({1});
  auto root = service.SolveRoot(base);
  ASSERT_TRUE(root.ok());
  auto bad = service.Extend(root->token, {{MakeLit(0, true)}});
  ASSERT_TRUE(bad.ok());
  ASSERT_TRUE(bad->result.IsFalse());
  auto worse = service.Extend(bad->token, {{MakeLit(5)}});
  ASSERT_TRUE(worse.ok());
  EXPECT_TRUE(worse->result.IsFalse());
}

TEST(SolverServiceTest, NewVariablesInIncrement) {
  SolverService service(SmallArena());
  Cnf base;
  base.AddDimacsClause({1});
  auto root = service.SolveRoot(base);
  ASSERT_TRUE(root.ok());
  // Increment mentions vars far beyond the base problem.
  auto extended = service.Extend(root->token, {{MakeLit(40), MakeLit(41)}, {MakeLit(41, true)}});
  ASSERT_TRUE(extended.ok());
  ASSERT_TRUE(extended->result.IsTrue());
  EXPECT_TRUE(SolverService::ModelBit(*extended, 40));
}

TEST(SolverServiceTest, ReleaseDropsStoreLiveBytes) {
  // A released token with no descendants must actually return its snapshot's
  // private pages to the store — the refcount chain from checkpoint map to
  // blob is load-bearing, and a leak here would silently pin every solved
  // problem forever.
  Rng rng(4242);
  Cnf base = RandomKSat(&rng, 60, 200, 3);
  auto store = std::make_shared<PageStore>();
  SolverServiceOptions options = SmallArena();
  options.tuning.store = store;
  SolverService service(options);
  auto root = service.SolveRoot(base);
  ASSERT_TRUE(root.ok());

  // Two divergent extensions of the root; the session's live state tracks the
  // most recent (right), so left's snapshot is parked with private pages.
  Cnf q_left = RandomKSat(&rng, 60, 12, 3);
  Cnf q_right = RandomKSat(&rng, 60, 12, 3);
  auto left = service.Extend(
      root->token, std::vector<std::vector<Lit>>(q_left.clauses.begin(), q_left.clauses.end()));
  ASSERT_TRUE(left.ok());
  auto right = service.Extend(
      root->token, std::vector<std::vector<Lit>>(q_right.clauses.begin(), q_right.clauses.end()));
  ASSERT_TRUE(right.ok());

  uint64_t live_before = store->stats().bytes_live();
  ASSERT_TRUE(service.Release(left->token).ok());
  EXPECT_LT(store->stats().bytes_live(), live_before);

  // The surviving branch is untouched by the release.
  auto deeper = service.Extend(right->token, {{MakeLit(0), MakeLit(1)}});
  EXPECT_TRUE(deeper.ok());
}

TEST(SolverServiceTest, ReleaseErrorPaths) {
  SolverService service(SmallArena());
  Cnf base;
  base.AddDimacsClause({1});
  auto root = service.SolveRoot(base);
  ASSERT_TRUE(root.ok());
  // Releasing a parent with a live descendant is clean; the descendant stays
  // extensible (its snapshot chain pins the shared pages).
  auto child = service.Extend(root->token, {{MakeLit(3)}});
  ASSERT_TRUE(child.ok());
  EXPECT_TRUE(service.Release(root->token).ok());
  EXPECT_FALSE(root->token.valid());
  auto grandchild = service.Extend(child->token, {{MakeLit(4)}});
  ASSERT_TRUE(grandchild.ok());
  EXPECT_TRUE(grandchild->result.IsTrue());

  // Double release: the handle was consumed; a second release (and a resume
  // through it) are clean errors, not UB.
  EXPECT_EQ(service.Release(root->token).code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(service.Extend(root->token, {{MakeLit(5)}}).status().code(),
            ErrorCode::kInvalidArgument);
  // An empty handle never reaches the session either.
  Checkpoint empty;
  EXPECT_EQ(service.Release(empty).code(), ErrorCode::kInvalidArgument);
}

TEST(SolverServiceTest, HandleFromAnotherServiceIsRejected) {
  // The typed-handle payoff: a checkpoint is service-affine, and using it on
  // a different service is a clean InvalidArgument — with raw uint64 tokens
  // this was silent UB (the token would alias an unrelated snapshot).
  SolverService first(SmallArena());
  SolverService second(SmallArena());
  Cnf base;
  base.AddDimacsClause({1, 2});
  auto a = first.SolveRoot(base);
  auto b = second.SolveRoot(base);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(second.Extend(a->token, {{MakeLit(0)}}).status().code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(second.Release(a->token).code(), ErrorCode::kInvalidArgument);
  EXPECT_TRUE(a->token.valid());  // the failed calls left the handle intact
  auto still = first.Extend(a->token, {{MakeLit(0)}});
  EXPECT_TRUE(still.ok());
}

TEST(SolverServiceTest, ResumeAfterReleaseThroughCloneFails) {
  SolverService service(SmallArena());
  Cnf base;
  base.AddDimacsClause({1, 2});
  auto root = service.SolveRoot(base);
  ASSERT_TRUE(root.ok());
  Checkpoint clone = root->token.Clone();
  EXPECT_TRUE(service.Release(root->token).ok());
  // The clone still pins the snapshot; releasing the last reference frees it.
  EXPECT_TRUE(service.Extend(clone, {{MakeLit(0)}}).ok());
  EXPECT_TRUE(service.Release(clone).ok());
  // All references gone: a stale copy of neither handle can exist (move-only),
  // and the service API can no longer reach the snapshot.
}

TEST(SolverServiceTest, MalformedEncodedRequestIsRejectedCleanly) {
  // Guest-side decoder hardening: forged counts/lengths must surface as
  // InvalidArgument and leave the parent pristine, not truncate into a
  // half-applied increment or overflow the mailbox read.
  SolverService service(SmallArena());
  Cnf base;
  base.AddDimacsClause({1, 2});
  auto root = service.SolveRoot(base);
  ASSERT_TRUE(root.ok());

  // Claims 2^32-1 clauses but carries none.
  uint32_t huge_count = 0xFFFFFFFFu;
  auto bad1 = service.ExtendEncoded(root->token, &huge_count, sizeof(huge_count));
  EXPECT_EQ(bad1.status().code(), ErrorCode::kInvalidArgument);

  // One clause claiming 2^30 literals with a 4-byte body.
  uint32_t bad2_words[3] = {1, 1u << 30, 7};
  auto bad2 = service.ExtendEncoded(root->token, bad2_words, sizeof(bad2_words));
  EXPECT_EQ(bad2.status().code(), ErrorCode::kInvalidArgument);

  // A literal whose variable exceeds the wire cap.
  uint32_t bad3_words[3] = {1, 1, (kMaxSolverWireVar + 1) << 1};
  auto bad3 = service.ExtendEncoded(root->token, bad3_words, sizeof(bad3_words));
  EXPECT_EQ(bad3.status().code(), ErrorCode::kInvalidArgument);

  // Truncated request (half a header).
  uint8_t stub[2] = {1, 0};
  auto bad4 = service.ExtendEncoded(root->token, stub, sizeof(stub));
  EXPECT_EQ(bad4.status().code(), ErrorCode::kInvalidArgument);

  // The parent survived every rejected increment and still extends cleanly.
  auto good = service.Extend(root->token, {{MakeLit(0)}});
  ASSERT_TRUE(good.ok());
  EXPECT_TRUE(good->result.IsTrue());
}

TEST(SolverServiceTest, EncoderRejectsOversizedIncrements) {
  SolverServiceOptions options = SmallArena();
  options.tuning.mailbox_bytes = 256;
  SolverService service(options);
  Cnf base;
  base.AddDimacsClause({1});
  ASSERT_TRUE(service.SolveRoot(base).ok());
  auto root_again = service.SolveRoot(base);
  EXPECT_EQ(root_again.status().code(), ErrorCode::kBadState);

  // 100 clauses * 8 bytes > 256-byte mailbox: the encoder refuses up front.
  std::vector<std::vector<Lit>> big(100, std::vector<Lit>{MakeLit(1)});
  std::vector<uint8_t> encoded;
  EXPECT_EQ(EncodeSolverRequest(big, options.tuning.mailbox_bytes, &encoded).code(),
            ErrorCode::kInvalidArgument);
  // Unbounded encode works and reports the true size.
  ASSERT_TRUE(EncodeSolverRequest(big, 0, &encoded).ok());
  EXPECT_EQ(encoded.size(), 4u + 100u * 8u);
  // A literal over the wire cap is rejected at encode time too.
  std::vector<std::vector<Lit>> forged = {{MakeLit(static_cast<Var>(kMaxSolverWireVar + 1))}};
  EXPECT_EQ(EncodeSolverRequest(forged, 0, &encoded).code(), ErrorCode::kInvalidArgument);
}

TEST(SolverServiceTest, ModelBitBoundsChecked) {
  SolverService service(SmallArena());
  Cnf base;
  base.AddDimacsClause({1});
  auto root = service.SolveRoot(base);
  ASSERT_TRUE(root.ok());
  ASSERT_TRUE(root->result.IsTrue());
  EXPECT_EQ(root->num_vars, 1u);
  EXPECT_TRUE(SolverService::ModelBit(*root, 0));
  // Out-of-range and negative variables read false, never out of bounds.
  EXPECT_FALSE(SolverService::ModelBit(*root, 1));
  EXPECT_FALSE(SolverService::ModelBit(*root, 1 << 20));
  EXPECT_FALSE(SolverService::ModelBit(*root, -1));
}

TEST(SolverServiceTest, TwoServicesShareOneStore) {
  // N solver services over one injected store (the paper's many-clients
  // picture): clause arenas and watch lists of the same base problem are
  // byte-identical pure data, so the second service's root solve dedups
  // against the first's resident pages.
  Rng rng(2026);
  Cnf base = RandomKSat(&rng, 300, 1200, 3);
  auto store = std::make_shared<PageStore>();
  SolverServiceOptions options;
  options.tuning.arena_bytes = 16ull << 20;
  options.tuning.store = store;
  SolverService first(options);
  SolverService second(options);

  auto a = first.SolveRoot(base);
  ASSERT_TRUE(a.ok());
  uint64_t cross_after_first = store->stats().cross_session_dedup_hits;
  auto b = second.SolveRoot(base);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->result.IsTrue(), b->result.IsTrue());
  EXPECT_GT(store->stats().cross_session_dedup_hits, cross_after_first);

  // Both services stay independently extensible on the shared substrate.
  auto ea = first.Extend(a->token, {{MakeLit(0)}});
  auto eb = second.Extend(b->token, {{MakeLit(0, true)}});
  ASSERT_TRUE(ea.ok());
  ASSERT_TRUE(eb.ok());
}

TEST(SolverServiceTest, RandomThreeSatIncrementalMatchesScratch) {
  // Solve p, extend with q, and cross-check the SAT/UNSAT verdict against a
  // from-scratch solve of p ∧ q.
  Rng rng(1234);
  Cnf p = RandomKSat(&rng, 60, 240, 3);
  SolverService service(SmallArena());
  auto root = service.SolveRoot(p);
  ASSERT_TRUE(root.ok());
  ASSERT_FALSE(root->result.IsUndef());

  for (int round = 0; round < 5; ++round) {
    Cnf q = RandomKSat(&rng, 60, 10, 3);
    std::vector<std::vector<Lit>> increment(q.clauses.begin(), q.clauses.end());
    auto extended = service.Extend(root->token, increment);
    ASSERT_TRUE(extended.ok());

    Solver scratch;
    Cnf combined = p;
    for (const auto& clause : q.clauses) {
      combined.clauses.push_back(clause);
    }
    scratch.EnsureVars(combined.num_vars);
    for (const auto& clause : combined.clauses) {
      scratch.AddClause(clause.data(), static_cast<uint32_t>(clause.size()));
    }
    LBool want = scratch.Solve();
    ASSERT_FALSE(want.IsUndef());
    EXPECT_EQ(extended->result.IsTrue(), want.IsTrue()) << "round " << round;

    // When SAT, the reported model must satisfy the combined formula.
    if (extended->result.IsTrue()) {
      std::vector<bool> model(combined.num_vars);
      for (Var v = 0; v < combined.num_vars; ++v) {
        model[v] = SolverService::ModelBit(*extended, v);
      }
      EXPECT_TRUE(combined.IsSatisfiedBy(model));
    }
  }
}

TEST(SolverServiceTest, DeepChainReusesWork) {
  // A long chain of small increments: every step's conflict count is the
  // *cumulative* solver total, so steps should add few conflicts each once the
  // base problem is solved (the incremental claim of §2).
  Rng rng(777);
  Cnf p = RandomKSat(&rng, 100, 400, 3);
  SolverService service(SmallArena());
  auto node = service.SolveRoot(p);
  ASSERT_TRUE(node.ok());
  ASSERT_FALSE(node->result.IsUndef());
  uint64_t base_conflicts = node->conflicts;

  uint64_t total_added = 0;
  int steps = 0;
  Checkpoint cur = std::move(node->token);
  for (int round = 0; round < 8; ++round) {
    Cnf q = RandomKSat(&rng, 100, 4, 3);
    std::vector<std::vector<Lit>> increment(q.clauses.begin(), q.clauses.end());
    auto next = service.Extend(cur, increment);
    ASSERT_TRUE(next.ok());
    if (next->result.IsFalse()) {
      break;
    }
    total_added += next->conflicts - base_conflicts;
    base_conflicts = next->conflicts;
    cur = std::move(next->token);
    ++steps;
  }
  if (steps > 0) {
    // Average per-step conflicts well below a scratch solve of the base.
    EXPECT_LT(total_added / static_cast<uint64_t>(steps), 2000u);
  }
}

}  // namespace
}  // namespace lw
