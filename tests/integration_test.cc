// Whole-stack integration: a guest program combining every library — it reads
// a DIMACS problem through the interposed filesystem, builds a CDCL solver in
// the snapshot arena, explores solver configurations with sys_guess, records
// per-path results in simfs (contained), and publishes the winner via the
// interposed stdout (escaping). This is the paper's end vision: arbitrary
// rich software running single-path-style under system-level backtracking.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "src/core/backtrack.h"
#include "src/interpose/guest_io.h"
#include "src/solver/cnf.h"
#include "src/solver/sat.h"
#include "src/util/rng.h"

namespace lw {
namespace {

struct PortfolioArgs {
  int paths_run = 0;
};

// Reads the whole interposed file into a host string (guest helper).
bool ReadAll(const char* path, std::string* out) {
  int fd = io_open(path, kOpenRead);
  if (fd < 0) {
    return false;
  }
  out->clear();
  char buf[512];
  int64_t n;
  while ((n = io_read(fd, buf, sizeof buf)) > 0) {
    out->append(buf, static_cast<size_t>(n));
  }
  io_close(fd);
  return n == 0;
}

void PortfolioGuest(void* arg) {
  auto* args = static_cast<PortfolioArgs*>(arg);
  auto* session = static_cast<BacktrackSession*>(CurrentExecutor());
  GuestHeap* heap = session->heap();

  if (!sys_guess_strategy(StrategyKind::kDfs)) {
    return;
  }
  // Every path re-reads the problem from the (snapshot-versioned) filesystem.
  std::string text;
  if (!ReadAll("/problem.cnf", &text)) {
    sys_guess_fail();
  }
  auto cnf = Cnf::FromDimacs(text);
  if (!cnf.ok()) {
    sys_guess_fail();
  }

  // The OS "guesses" the solver configuration (a 3-way portfolio).
  int config = sys_guess(3);
  SolverOptions solver_options;
  solver_options.random_seed = 1000 + static_cast<uint64_t>(config);
  solver_options.var_decay = config == 0 ? 0.85 : config == 1 ? 0.95 : 0.99;

  args->paths_run++;

  // Solver state lives in the arena: rolled back with the path.
  ScopedAllocHooks hooks(heap->Hooks());
  Solver* solver = GuestNew<Solver>(heap, solver_options);
  solver->EnsureVars(cnf->num_vars);
  for (const auto& clause : cnf->clauses) {
    solver->AddClause(clause.data(), static_cast<uint32_t>(clause.size()));
  }
  LBool verdict = solver->Solve();

  // Record the verdict in a per-path file — contained, so sibling configs never
  // see it — then publish through the interposed stdout.
  int fd = io_open("/verdict", kOpenWrite | kOpenCreate | kOpenTrunc);
  if (fd >= 0) {
    char line[64];
    int len = std::snprintf(line, sizeof line, "config=%d %s", config,
                            verdict.IsTrue() ? "SAT" : "UNSAT");
    io_write(fd, line, static_cast<size_t>(len));
    io_close(fd);
  }
  // Cross-check: the file we just wrote reads back on this path.
  std::string back;
  if (!ReadAll("/verdict", &back) || back.find("config=") != 0) {
    sys_guess_fail();
  }
  io_write(1, back.data(), back.size());
  io_write(1, "\n", 1);
  sys_note_solution();
  sys_guess_fail();  // try the remaining configurations too
}

TEST(IntegrationTest, SolverPortfolioOverInterposedFs) {
  // Host side: set up the filesystem with a satisfiable random 3-SAT problem.
  Rng rng(31337);
  Cnf problem = RandomKSat(&rng, 60, 200, 3);
  Solver reference;
  reference.EnsureVars(problem.num_vars);
  for (const auto& clause : problem.clauses) {
    reference.AddClause(clause.data(), static_cast<uint32_t>(clause.size()));
  }
  const bool expect_sat = reference.Solve().IsTrue();

  SimFs fs;
  auto ino = fs.Create("/problem.cnf");
  ASSERT_TRUE(ino.ok());
  std::string dimacs = problem.ToDimacs();
  ASSERT_TRUE(fs.WriteAt(*ino, 0, dimacs.data(), dimacs.size()).ok());

  GuestIo io(&fs, InterposePolicy::SoundMinimal());
  ScopedGuestIo scoped(&io);

  std::string emitted;
  SessionOptions options;
  options.arena_bytes = 32ull << 20;
  options.output = [&emitted](std::string_view text) { emitted += text; };
  BacktrackSession session(options);
  session.AddAttachment(&io);

  PortfolioArgs args;
  ASSERT_TRUE(session.Run(&PortfolioGuest, &args).ok());

  // All three configurations ran and agreed with the reference verdict.
  EXPECT_EQ(args.paths_run, 3);
  EXPECT_EQ(session.stats().solutions, 3u);
  for (int config = 0; config < 3; ++config) {
    std::string needle = "config=" + std::to_string(config) + (expect_sat ? " SAT" : " UNSAT");
    EXPECT_NE(emitted.find(needle), std::string::npos) << emitted;
  }

  // Containment: the per-path verdict files were rolled back with the scope.
  EXPECT_EQ(fs.Lookup("/verdict").status().code(), ErrorCode::kNotFound);
  // The problem file is untouched.
  auto st = fs.Stat("/problem.cnf");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->size, dimacs.size());
}

// The same portfolio under BFS: strategy choice must not affect results.
TEST(IntegrationTest, PortfolioUnderBfs) {
  Rng rng(99);
  Cnf problem = RandomKSat(&rng, 40, 120, 3);
  SimFs fs;
  auto ino = fs.Create("/problem.cnf");
  ASSERT_TRUE(ino.ok());
  std::string dimacs = problem.ToDimacs();
  ASSERT_TRUE(fs.WriteAt(*ino, 0, dimacs.data(), dimacs.size()).ok());

  GuestIo io(&fs, InterposePolicy::SoundMinimal());
  ScopedGuestIo scoped(&io);

  SessionOptions options;
  options.arena_bytes = 32ull << 20;
  options.strategy.kind = StrategyKind::kBfs;
  options.output = [](std::string_view) {};
  BacktrackSession session(options);
  session.AddAttachment(&io);

  PortfolioArgs args;
  // The guest requests kDfs in its scope call; wire the BFS session config in
  // by reusing the guest but overriding through the scope: simplest is a DFS
  // scope inside a BFS-configured session — the scope call wins, which is
  // itself worth pinning down.
  ASSERT_TRUE(session.Run(&PortfolioGuest, &args).ok());
  EXPECT_EQ(args.paths_run, 3);
}

}  // namespace
}  // namespace lw
