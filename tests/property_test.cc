// Cross-module property tests: randomized operation sequences checked against
// simple reference models. These complement the per-module suites by attacking
// invariants the unit tests can't sweep by hand.

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <memory>
#include <vector>

#include "src/core/guest_heap.h"
#include "src/prolog/machine.h"
#include "src/prolog/term.h"
#include "src/util/rng.h"

namespace lw {
namespace {

// --- GuestHeap: random alloc/free against a shadow model ---

class GuestHeapRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GuestHeapRandomTest, NeverOverlapsAndSurvivesChurn) {
  Rng rng(GetParam());
  constexpr size_t kArena = 1 << 20;
  std::vector<uint8_t> backing(kArena);
  GuestHeap* heap = GuestHeap::Init(backing.data(), kArena);

  struct Block {
    uint8_t* ptr;
    size_t size;
    uint8_t fill;
  };
  std::vector<Block> live;
  uint8_t next_fill = 1;

  for (int op = 0; op < 2000; ++op) {
    bool do_alloc = live.empty() || rng.Next() % 3 != 0;
    if (do_alloc) {
      size_t size = 1 + rng.Next() % 512;
      auto* p = static_cast<uint8_t*>(heap->Alloc(size));
      if (p == nullptr) {
        continue;  // exhaustion is legal under churn
      }
      // Alignment and containment.
      ASSERT_EQ(reinterpret_cast<uintptr_t>(p) % 16, 0u);
      ASSERT_GE(p, backing.data());
      ASSERT_LE(p + size, backing.data() + kArena);
      std::memset(p, next_fill, size);
      live.push_back({p, size, next_fill});
      next_fill = static_cast<uint8_t>(next_fill == 255 ? 1 : next_fill + 1);
    } else {
      size_t victim = rng.Next() % live.size();
      // The block's fill pattern must be intact (no overlap ever happened).
      for (size_t i = 0; i < live[victim].size; ++i) {
        ASSERT_EQ(live[victim].ptr[i], live[victim].fill) << "corruption at op " << op;
      }
      heap->Free(live[victim].ptr);
      live.erase(live.begin() + static_cast<long>(victim));
    }
    if (op % 256 == 0) {
      ASSERT_TRUE(heap->CheckConsistency());
    }
  }
  for (const Block& block : live) {
    for (size_t i = 0; i < block.size; ++i) {
      ASSERT_EQ(block.ptr[i], block.fill);
    }
    heap->Free(block.ptr);
  }
  ASSERT_TRUE(heap->CheckConsistency());
  EXPECT_EQ(heap->stats().bytes_in_use, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GuestHeapRandomTest, ::testing::Values(1, 2, 3, 4, 5, 99));

// --- TermHeap: unification properties on random terms ---

class TermBuilder {
 public:
  TermBuilder(AtomTable* atoms, TermHeap* heap, Rng* rng) : atoms_(atoms), heap_(heap), rng_(rng) {}

  // Builds a random term of bounded depth over a small vocabulary; `vars` is a
  // shared pool so the same variable can occur twice.
  TermRef Random(int depth, std::vector<TermRef>* vars) {
    uint64_t pick = rng_->Next() % 10;
    if (depth <= 0 || pick < 3) {
      if (pick < 1 && !vars->empty()) {
        return (*vars)[rng_->Next() % vars->size()];
      }
      if (pick < 2) {
        TermRef v = heap_->NewVar();
        vars->push_back(v);
        return v;
      }
      return heap_->NewInt(static_cast<int64_t>(rng_->Next() % 5));
    }
    if (pick < 5) {
      return heap_->NewAtom(atoms_->Intern(pick < 4 ? "a" : "b"));
    }
    uint32_t arity = 1 + static_cast<uint32_t>(rng_->Next() % 3);
    std::vector<TermRef> args(arity);
    for (TermRef& arg : args) {
      arg = Random(depth - 1, vars);
    }
    TermRef s = heap_->NewStruct(atoms_->Intern(pick < 8 ? "f" : "g"), arity);
    for (uint32_t i = 0; i < arity; ++i) {
      heap_->SetArg(s, i, args[i]);
    }
    return s;
  }

 private:
  AtomTable* atoms_;
  TermHeap* heap_;
  Rng* rng_;
};

// Exercise unification through the machine (its Unify is private, so drive it
// with =/2 queries over stringified random terms — which also round-trips the
// parser/printer pair).
class UnifyPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(UnifyPropertyTest, UnifyIsSymmetricAndIdempotent) {
  Rng rng(GetParam());
  AtomTable atoms;
  TermHeap heap;
  TermBuilder builder(&atoms, &heap, &rng);

  PrologMachine machine;
  ASSERT_TRUE(machine.Consult("dummy.").ok());

  for (int round = 0; round < 60; ++round) {
    std::vector<TermRef> vars;
    TermRef t1 = builder.Random(3, &vars);
    TermRef t2 = builder.Random(3, &vars);
    std::string s1 = heap.ToString(atoms, t1);
    std::string s2 = heap.ToString(atoms, t2);
    // Variable names _Gn are parseable variables — the round trip renames
    // them consistently within one query.
    auto ab = machine.Query(s1 + " = " + s2 + ".");
    auto ba = machine.Query(s2 + " = " + s1 + ".");
    ASSERT_TRUE(ab.ok()) << s1 << " = " << s2;
    ASSERT_TRUE(ba.ok());
    // Symmetry.
    EXPECT_EQ(*ab != 0, *ba != 0) << s1 << " vs " << s2;
    // Self-unification always succeeds.
    auto self = machine.Query(s1 + " = " + s1 + ".");
    ASSERT_TRUE(self.ok());
    EXPECT_EQ(*self, 1u) << s1;
    // Unification implies structural identity afterwards: t = t2, t == t2.
    auto entail = machine.Query(s1 + " = " + s2 + ", " + s1 + " == " + s2 + ".");
    ASSERT_TRUE(entail.ok());
    EXPECT_EQ(*entail != 0, *ab != 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UnifyPropertyTest, ::testing::Values(11, 22, 33, 44));

// --- TermHeap: copy preserves structure and variable sharing ---

TEST(TermHeapPropertyTest, CopyPreservesSharingAcrossHeaps) {
  Rng rng(5);
  AtomTable atoms;
  TermHeap src;
  TermBuilder builder(&atoms, &src, &rng);
  for (int round = 0; round < 40; ++round) {
    std::vector<TermRef> vars;
    TermRef t = builder.Random(4, &vars);
    TermHeap dst;
    std::unordered_map<TermRef, TermRef> var_map;
    TermRef copy = dst.CopyFrom(src, t, &var_map);
    // Printed forms agree up to variable renaming: compare shapes by replacing
    // variable spellings with position markers.
    std::string a = src.ToString(atoms, t);
    std::string b = dst.ToString(atoms, copy);
    auto shape = [](const std::string& s) {
      std::string out;
      std::map<std::string, int> names;
      for (size_t i = 0; i < s.size();) {
        if (s[i] == '_' && i + 1 < s.size() && s[i + 1] == 'G') {
          size_t j = i + 2;
          while (j < s.size() && std::isdigit(static_cast<unsigned char>(s[j])) != 0) {
            ++j;
          }
          std::string name = s.substr(i, j - i);
          auto [it, fresh] = names.emplace(name, static_cast<int>(names.size()));
          out += "V" + std::to_string(it->second);
          i = j;
        } else {
          out += s[i++];
        }
      }
      return out;
    };
    EXPECT_EQ(shape(a), shape(b));
  }
}

}  // namespace
}  // namespace lw
