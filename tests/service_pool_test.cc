// ServicePool<SolverService>: K solver services on K worker threads over one shared
// store. Results must match a single-threaded reference service exactly
// (solver determinism is per-service, so parity is exact), dedup must cross
// worker threads, and per-service FIFO submission must let a client pipeline a
// root and its extensions without waiting.

#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <vector>

#include "src/service/pool.h"
#include "src/solver/pool_jobs.h"
#include "src/util/rng.h"

#if defined(__has_feature)
#if __has_feature(thread_sanitizer) && !defined(__SANITIZE_THREAD__)
#define __SANITIZE_THREAD__ 1
#endif
#endif

namespace lw {
namespace {

// Under TSan the fault-free incremental engine keeps the suite signal-free;
// elsewhere exercise the paper's CoW protocol on real worker threads.
SnapshotMode PoolSnapshotMode() {
#ifdef __SANITIZE_THREAD__
  return SnapshotMode::kIncremental;
#else
  return SnapshotMode::kCow;
#endif
}

Cnf BaseProblem() {
  Rng rng(20260731);
  return RandomKSat(&rng, 120, 500, 3);
}

ServicePoolOptions<SolverService> PoolOptions(int services) {
  ServicePoolOptions<SolverService> options;
  options.num_services = services;
  options.service.tuning.arena_bytes = 8ull << 20;
  options.service.tuning.snapshot_mode = PoolSnapshotMode();
  return options;
}

TEST(SolverServicePoolTest, FleetMatchesSingleServiceReference) {
  Cnf base = BaseProblem();

  // Reference: one plain service, sequential.
  SolverServiceOptions ref_options;
  ref_options.tuning.arena_bytes = 8ull << 20;
  ref_options.tuning.snapshot_mode = PoolSnapshotMode();
  SolverService reference(ref_options);
  auto ref_root = reference.SolveRoot(base);
  ASSERT_TRUE(ref_root.ok());

  constexpr int kServices = 4;
  ServicePool<SolverService> pool(PoolOptions(kServices));
  std::vector<SolverService::Outcome> roots;
  ASSERT_TRUE(SolveRootEverywhere(pool, base, &roots).ok());
  ASSERT_EQ(roots.size(), static_cast<size_t>(kServices));
  for (const auto& outcome : roots) {
    EXPECT_EQ(outcome.result.raw(), ref_root->result.raw());
    EXPECT_EQ(outcome.conflicts, ref_root->conflicts);  // determinism, not luck
  }

  // Branch every service with the same increment, in parallel; parity again.
  std::vector<std::vector<Lit>> unit = {{MakeLit(0)}};
  auto ref_ext = reference.Extend(ref_root->token, unit);
  ASSERT_TRUE(ref_ext.ok());
  std::vector<std::future<Result<SolverService::Outcome>>> futures;
  for (int i = 0; i < kServices; ++i) {
    futures.push_back(SubmitExtend(pool, i, roots[static_cast<size_t>(i)].token, unit));
  }
  for (auto& future : futures) {
    auto outcome = future.get();
    ASSERT_TRUE(outcome.ok());
    EXPECT_EQ(outcome->result.raw(), ref_ext->result.raw());
    EXPECT_EQ(outcome->conflicts, ref_ext->conflicts);
  }

  // The whole point of the shared store: the workers deduped each other.
  ServiceFleetStats stats = pool.fleet_stats();
  EXPECT_GT(stats.cross_session_dedup_hits, 0u);
  EXPECT_EQ(stats.jobs_executed, static_cast<uint64_t>(2 * kServices));
}

TEST(SolverServicePoolTest, PipelinedSubmissionRunsInOrder) {
  Cnf base = BaseProblem();
  ServicePool<SolverService> pool(PoolOptions(2));

  // Enqueue root + two dependent extends back-to-back without waiting: the
  // per-service FIFO must sequence them (the extend's parent token comes from
  // the root future only after both are already queued... so instead pipeline
  // divergent extensions of the root once known, interleaved across services).
  auto root0 = SubmitSolveRoot(pool, 0, &base);
  auto root1 = SubmitSolveRoot(pool, 1, &base);
  auto outcome0 = root0.get();
  auto outcome1 = root1.get();
  ASSERT_TRUE(outcome0.ok());
  ASSERT_TRUE(outcome1.ok());

  // Two divergent branches per service, queued without intermediate waits
  // (SubmitExtend clones the parent handle into each job, so one handle
  // branches any number of in-flight extensions).
  std::vector<std::future<Result<SolverService::Outcome>>> futures;
  for (int i = 0; i < 2; ++i) {
    const Checkpoint& parent = (i == 0 ? outcome0 : outcome1)->token;
    futures.push_back(SubmitExtend(pool, i, parent, {{MakeLit(1)}}));
    futures.push_back(SubmitExtend(pool, i, parent, {{~MakeLit(1)}}));
  }
  for (auto& future : futures) {
    auto outcome = future.get();
    ASSERT_TRUE(outcome.ok());
    EXPECT_TRUE(outcome->token.valid());
  }

  // Both services branched the same parent twice: checkpoints accumulate.
  ServiceFleetStats stats = pool.fleet_stats();
  EXPECT_EQ(stats.checkpoints, 6u);  // (1 root + 2 branches) × 2 services
}

TEST(SolverServicePoolTest, ReleaseAndShutdownDrainClean) {
  Cnf base = BaseProblem();
  std::shared_ptr<PageStore> store;
  {
    ServicePool<SolverService> pool(PoolOptions(3));
    store = pool.store();
    std::vector<SolverService::Outcome> roots;
    ASSERT_TRUE(SolveRootEverywhere(pool, base, &roots).ok());
    for (int i = 0; i < 3; ++i) {
      EXPECT_TRUE(SubmitRelease(pool, i, roots[static_cast<size_t>(i)].token).get().ok());
    }
    // Destructor drains queues and joins workers.
  }
  // All services died with the pool; only our handle keeps the store alive.
  // Every blob the fleet minted was returned — only the store-held canonical
  // zero blob may remain.
  EXPECT_LE(store->stats().live_blobs, 1u);
}

TEST(SolverServicePoolTest, DrainOnDestructionPropagatesMidQueueFailure) {
  // A failing job in the middle of a queued pipeline must fail through its
  // own future and leave the worker serving the rest of the queue — both
  // while running and during destructor drain.
  Cnf base = BaseProblem();
  std::future<Result<SolverService::Outcome>> before;
  std::future<Result<SolverService::Outcome>> failing;
  std::future<Result<SolverService::Outcome>> after;
  std::future<Status> released;
  {
    ServicePool<SolverService> pool(PoolOptions(1));
    auto root = SubmitSolveRoot(pool, 0, &base).get();
    ASSERT_TRUE(root.ok());

    // Queue: good extend → failing extend (empty handle) → good extend →
    // release, then destroy the pool immediately: the destructor drains all
    // four in order.
    before = SubmitExtend(pool, 0, root->token, {{MakeLit(0)}});
    failing = SubmitExtend(pool, 0, Checkpoint(), {{MakeLit(1)}});
    after = SubmitExtend(pool, 0, root->token, {{~MakeLit(0)}});
    released = SubmitRelease(pool, 0, root->token);
  }
  auto ok_before = before.get();
  ASSERT_TRUE(ok_before.ok());
  EXPECT_FALSE(ok_before->result.IsUndef());
  EXPECT_EQ(failing.get().status().code(), ErrorCode::kInvalidArgument);
  auto ok_after = after.get();
  ASSERT_TRUE(ok_after.ok());  // the worker outlived the failed job
  EXPECT_FALSE(ok_after->result.IsUndef());
  EXPECT_TRUE(released.get().ok());
}

TEST(SolverServicePoolTest, WrongServiceHandleFailsThroughFuture) {
  Cnf base = BaseProblem();
  ServicePool<SolverService> pool(PoolOptions(2));
  auto root0 = SubmitSolveRoot(pool, 0, &base).get();
  auto root1 = SubmitSolveRoot(pool, 1, &base).get();
  ASSERT_TRUE(root0.ok());
  ASSERT_TRUE(root1.ok());
  // Service 1 rejects service 0's handle; both services stay healthy.
  auto wrong = SubmitExtend(pool, 1, root0->token, {{MakeLit(0)}}).get();
  EXPECT_EQ(wrong.status().code(), ErrorCode::kInvalidArgument);
  EXPECT_TRUE(SubmitExtend(pool, 0, root0->token, {{MakeLit(0)}}).get().ok());
  EXPECT_TRUE(SubmitExtend(pool, 1, root1->token, {{MakeLit(0)}}).get().ok());
}

}  // namespace
}  // namespace lw
