// SymxService: state exploration through the generic checkpoint service seam.
// Host-driven breadth-first exploration must reproduce the ExplicitExplorer's
// path counts on canned programs, forking (TakeBranch twice on one parent)
// must be the only state-copy mechanism, witnesses must validate concretely,
// and the fleet shape must come for free from ServicePool<SymxService>.

#include <gtest/gtest.h>

#include <deque>
#include <utility>
#include <vector>

#include "src/service/pool.h"
#include "src/service/symx_service.h"
#include "src/symx/explorer.h"
#include "src/symx/programs.h"

namespace lw {
namespace {

SymxServiceOptions SmallOptions() {
  SymxServiceOptions options;
  options.tuning.arena_bytes = 16ull << 20;
  return options;
}

struct ExploreTally {
  uint64_t completed = 0;
  uint64_t killed = 0;
  uint64_t violations = 0;
  std::vector<std::vector<uint32_t>> witnesses;
};

// Host-side BFS over the service's branch tree: take every feasible side of
// every branch node; continue past explorable violations on the held side.
ExploreTally ExploreAll(SymxService& service, const Program& program) {
  ExploreTally tally;
  auto root = service.BootProgram(program);
  EXPECT_TRUE(root.ok());
  std::deque<SymxService::Outcome> frontier;
  frontier.push_back(*std::move(root));
  while (!frontier.empty()) {
    SymxService::Outcome node = std::move(frontier.front());
    frontier.pop_front();
    switch (node.kind) {
      case SymxService::StateKind::kCompleted:
        ++tally.completed;
        break;
      case SymxService::StateKind::kKilled:
        ++tally.killed;
        break;
      case SymxService::StateKind::kViolation: {
        ++tally.violations;
        tally.witnesses.push_back(node.witness);
        // An explorable violation (parked on an assert that can also hold)
        // continues past the assert; a terminal one reproduces itself, so
        // only descend when the state advanced.
        auto onward = service.TakeBranch(node.token, true);
        EXPECT_TRUE(onward.ok());
        if (onward.ok() && onward->steps > node.steps) {
          frontier.push_back(*std::move(onward));
        }
        break;
      }
      case SymxService::StateKind::kBranch: {
        if (node.taken_feasible) {
          auto taken = service.TakeBranch(node.token, true);
          EXPECT_TRUE(taken.ok());
          if (taken.ok()) {
            frontier.push_back(*std::move(taken));
          }
        }
        if (node.fall_feasible) {
          auto fall = service.TakeBranch(node.token, false);
          EXPECT_TRUE(fall.ok());
          if (fall.ok()) {
            frontier.push_back(*std::move(fall));
          }
        }
        break;
      }
    }
  }
  return tally;
}

TEST(SymxServiceTest, PasswordProgramMatchesExplicitExplorer) {
  const std::vector<uint32_t> secret = {13, 7, 42};
  Program program = PasswordProgram(secret);

  // Reference: the software-copy explorer.
  ExploreOptions ref_options;
  ExploreStats ref_stats;
  std::vector<Violation> ref_violations;
  ASSERT_TRUE(ExplicitExplorer(ref_options).Explore(program, &ref_stats, &ref_violations).ok());

  SymxService service(SmallOptions());
  ExploreTally tally = ExploreAll(service, program);
  EXPECT_EQ(tally.completed, ref_stats.paths_completed);
  EXPECT_EQ(tally.violations, ref_stats.violations);
  ASSERT_EQ(tally.witnesses.size(), 1u);
  EXPECT_EQ(tally.witnesses[0], secret);  // the magic input, recovered

  // The witness validates end-to-end on a concrete replay.
  auto replay = RunConcrete(program, tally.witnesses[0], SmallOptions().vm);
  ASSERT_TRUE(replay.ok());
  EXPECT_TRUE(replay->assert_failed);
}

TEST(SymxServiceTest, BranchTreeForkSemantics) {
  // A full binary tree: every branch node must fork into two live children
  // from one immutable parent — TakeBranch twice on the same handle.
  Program program = BranchTreeProgram(4, 8);
  ExploreOptions ref_options;
  ExploreStats ref_stats;
  ASSERT_TRUE(ExplicitExplorer(ref_options).Explore(program, &ref_stats, nullptr).ok());
  ASSERT_EQ(ref_stats.paths_completed, 16u);  // 2^4

  SymxService service(SmallOptions());
  ExploreTally tally = ExploreAll(service, program);
  EXPECT_EQ(tally.completed, 16u);
  EXPECT_EQ(tally.violations, 0u);
}

TEST(SymxServiceTest, TerminalStatesReproduceAndLifecycleErrors) {
  Program program = BranchTreeProgram(1, 2);
  SymxService service(SmallOptions());
  EXPECT_EQ(service.TakeBranch(Checkpoint(), true).status().code(), ErrorCode::kBadState);
  auto root = service.BootProgram(program);
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(service.BootProgram(program).status().code(), ErrorCode::kBadState);
  ASSERT_EQ(root->kind, SymxService::StateKind::kBranch);

  auto leaf = service.TakeBranch(root->token, true);
  ASSERT_TRUE(leaf.ok());
  ASSERT_EQ(leaf->kind, SymxService::StateKind::kCompleted);
  // Extending a terminal node reproduces the terminal outcome.
  auto again = service.TakeBranch(leaf->token, false);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->kind, SymxService::StateKind::kCompleted);
  EXPECT_EQ(again->steps, leaf->steps);

  // Released handles and foreign handles fail cleanly.
  EXPECT_TRUE(service.Release(leaf->token).ok());
  EXPECT_EQ(service.TakeBranch(leaf->token, true).status().code(),
            ErrorCode::kInvalidArgument);
  SymxService other(SmallOptions());
  auto other_root = other.BootProgram(program);
  ASSERT_TRUE(other_root.ok());
  EXPECT_EQ(service.TakeBranch(other_root->token, true).status().code(),
            ErrorCode::kInvalidArgument);
}

TEST(SymxServiceTest, ChecksumWitnessThroughPool) {
  // Two explorations fleet-style through the generic pool: workload per
  // worker, handles cloned across threads, shared store underneath.
  Program checksum = ChecksumProgram(2, 0xBEEF);
  Program tree = BranchTreeProgram(3, 4);
  ServicePoolOptions<SymxService> options;
  options.num_services = 2;
  options.service.tuning.arena_bytes = 16ull << 20;
  ServicePool<SymxService> pool(options);

  auto boot0 = pool.Submit(0, [&checksum](SymxService& s) { return s.BootProgram(checksum); });
  auto boot1 = pool.Submit(1, [&tree](SymxService& s) { return s.BootProgram(tree); });
  auto c = boot0.get();
  auto t = boot1.get();
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(t.ok());

  // Drive the checksum exploration on worker 0 until the violation appears.
  std::deque<SymxService::Outcome> frontier;
  frontier.push_back(*std::move(c));
  std::vector<uint32_t> witness;
  uint64_t terminals = 0;
  while (!frontier.empty()) {
    SymxService::Outcome node = std::move(frontier.front());
    frontier.pop_front();
    if (node.kind == SymxService::StateKind::kViolation) {
      witness = node.witness;
      ++terminals;
      continue;
    }
    if (node.kind != SymxService::StateKind::kBranch) {
      ++terminals;
      continue;
    }
    for (bool dir : {true, false}) {
      if ((dir && !node.taken_feasible) || (!dir && !node.fall_feasible)) {
        continue;
      }
      auto parent = std::make_shared<Checkpoint>(node.token.Clone());
      auto child = pool.Submit(0, [parent, dir](SymxService& s) {
        return s.TakeBranch(*parent, dir);
      }).get();
      ASSERT_TRUE(child.ok());
      frontier.push_back(*std::move(child));
    }
  }
  EXPECT_EQ(terminals, 2u);  // one violation + one completed (see programs.h)
  ASSERT_FALSE(witness.empty());
  auto replay = RunConcrete(checksum, witness, options.service.vm);
  ASSERT_TRUE(replay.ok());
  EXPECT_TRUE(replay->assert_failed);
  EXPECT_GT(pool.fleet_stats().jobs_executed, 2u);
}

}  // namespace
}  // namespace lw
