// O(spine) snapshot release with shard-batched blob reclamation:
//   * store-level parity — ReleaseBatch leaves the store (live/free blob and
//     byte counters) bit-identical to releasing the same refs one by one;
//   * exact lock accounting — a batch with dying refs spread over S distinct
//     shards takes exactly S shard-lock holds (asserted via PageRef::shard());
//   * spine-only descent — releasing a map that shares all but D pages with a
//     live sibling visits O(D · height) radix nodes and never descends a
//     shared subtree;
//   * session-level parity — the same checkpoint storm under
//     batched_release={true,false} ends with identical store residency for
//     every engine;
//   * concurrency — sessions on different threads batching releases into one
//     shared store never corrupt it.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/core/backtrack.h"
#include "src/snapshot/soft_dirty.h"

#if defined(__has_feature)
#if __has_feature(thread_sanitizer) && !defined(__SANITIZE_THREAD__)
#define __SANITIZE_THREAD__ 1
#endif
#endif

namespace lw {
namespace {

bool SkipForMode(SnapshotMode mode, const char** reason) {
#ifdef __SANITIZE_THREAD__
  // kAdaptive may arm the CoW mechanism, so it carries the same TSan conflict.
  if (mode == SnapshotMode::kCow || mode == SnapshotMode::kAdaptive) {
    *reason = "CoW SIGSEGV protocol conflicts with TSan signal interposition";
    return true;
  }
#endif
  if (mode == SnapshotMode::kSoftDirty && !SoftDirtyTracker::Supported()) {
    *reason = "soft-dirty unavailable on this kernel";
    return true;
  }
  (void)reason;
  return false;
}

// Deterministic distinct page content: (salt, i) is written verbatim into the
// page, so no two pairs collide — each publish mints its own blob (never a
// dedup hit) and no page is all-zero.
void FillPage(uint8_t* buf, uint32_t salt, uint32_t i) {
  for (size_t b = 0; b < kPageSize; ++b) {
    buf[b] = static_cast<uint8_t>((salt * 131 + b * 13) | 1);
  }
  std::memcpy(buf, &salt, sizeof(salt));
  std::memcpy(buf + sizeof(salt), &i, sizeof(i));
}

// --- Store-level parity ----------------------------------------------------------

// The same publish-then-release script against two stores — one releasing
// per-ref (destructor cascade), one through ReleaseBatch — must end with
// identical residency counters: the batch changes lock traffic, nothing else.
TEST(ReleaseBatchStoreTest, BatchedEndStateMatchesPerRef) {
  PageStore per_ref_store;
  PageStore batched_store;
  uint8_t buf[kPageSize];

  auto publish = [&buf](PageStore& store, std::vector<PageRef>* refs,
                        std::vector<PageRef>* keep) {
    for (uint32_t i = 0; i < 96; ++i) {
      FillPage(buf, 1, i);
      refs->push_back(store.Publish(buf));
    }
    // A slice stays alive through copies: those blobs must survive the release.
    for (size_t i = 0; i < 12; ++i) {
      keep->push_back((*refs)[i]);
    }
  };

  std::vector<PageRef> a_refs, a_keep, b_refs, b_keep;
  publish(per_ref_store, &a_refs, &a_keep);
  publish(batched_store, &b_refs, &b_keep);

  a_refs.clear();  // per-ref: each destructor takes its shard lock on its own
  batched_store.ReleaseBatch(b_refs);
  EXPECT_TRUE(b_refs.empty());

  const PageStore::Stats a = per_ref_store.stats();
  const PageStore::Stats b = batched_store.stats();
  EXPECT_EQ(a.live_blobs, b.live_blobs);
  EXPECT_EQ(a.free_blobs, b.free_blobs);
  EXPECT_EQ(a.live_bytes, b.live_bytes);
  EXPECT_EQ(a.free_bytes, b.free_bytes);
  EXPECT_EQ(a.total_published, b.total_published);
  EXPECT_EQ(b.live_blobs, 12u);
  EXPECT_EQ(b.free_blobs, 96u - 12u);
  // Only the batched store paid batch counters; the per-ref one paid none.
  EXPECT_EQ(a.release_batches, 0u);
  EXPECT_EQ(b.release_batches, 1u);
  EXPECT_EQ(b.blobs_recycled_batched, 96u - 12u);
  // Spill is disabled on both stores: neither release path may touch the spill
  // tier, so every spill counter is exactly zero.
  EXPECT_EQ(a.spills, 0u);
  EXPECT_EQ(a.spilled_blobs, 0u);
  EXPECT_EQ(b.spills, 0u);
  EXPECT_EQ(b.spilled_blobs, 0u);
  EXPECT_EQ(b.spill_bytes, 0u);
  EXPECT_EQ(b.faultbacks, 0u);

  // Republish the same content: recycled payloads must serve cleanly.
  for (uint32_t i = 20; i < 40; ++i) {
    FillPage(buf, 1, i);
    PageRef ref = batched_store.Publish(buf);
    EXPECT_TRUE(ref.valid());
    EXPECT_TRUE(ref.EqualsPage(buf));
  }
}

TEST(ReleaseBatchStoreTest, ShardLockCountMatchesDistinctDyingShards) {
  PageStore store;
  uint8_t buf[kPageSize];
  std::vector<PageRef> refs;
  for (uint32_t i = 0; i < 64; ++i) {
    FillPage(buf, 2, i);
    refs.push_back(store.Publish(buf));
  }
  // Pin the first 8: their refcounts stay above zero, so they neither die nor
  // contribute a shard-lock hold.
  std::vector<PageRef> keep(refs.begin(), refs.begin() + 8);

  std::set<uint32_t> dying_shards;
  for (size_t i = 8; i < refs.size(); ++i) {
    dying_shards.insert(refs[i].shard());
  }

  const PageStore::Stats before = store.stats();
  store.ReleaseBatch(refs);
  const PageStore::Stats after = store.stats();
  EXPECT_EQ(after.release_batches - before.release_batches, 1u);
  EXPECT_EQ(after.blobs_recycled_batched - before.blobs_recycled_batched, 64u - 8u);
  EXPECT_EQ(after.release_shard_locks - before.release_shard_locks, dying_shards.size());
  EXPECT_LE(dying_shards.size(), kPageStoreShards);

  // A batch with no dying blobs takes no shard lock at all.
  std::vector<PageRef> copies(keep.begin(), keep.end());
  const PageStore::Stats mid = store.stats();
  store.ReleaseBatch(copies);
  const PageStore::Stats end = store.stats();
  EXPECT_EQ(end.release_shard_locks - mid.release_shard_locks, 0u);
  EXPECT_EQ(end.blobs_recycled_batched - mid.blobs_recycled_batched, 0u);
}

// --- Spine-only descent ----------------------------------------------------------

// Release of a radix map sharing all but D pages with a live sibling must
// visit only the uniquely-owned spine: ≤ 1 + D · height nodes, with every
// shared subtree dropped by a single refcount decrement. The sibling and the
// store survive untouched.
TEST(ReleaseBatchRadixTest, SharedSubtreesAreNeverDescended) {
  PageStore store;
  constexpr uint32_t kPages = 4096;  // height 3 at 4 bits/level
  constexpr int kHeight = 3;
  uint8_t buf[kPageSize];

  PageMap base(PageMapKind::kRadix, kPages);
  for (uint32_t page = 0; page < kPages; ++page) {
    FillPage(buf, 3, page);
    base.Set(page, store.Publish(buf));
  }
  ASSERT_EQ(store.stats().live_blobs, kPages);

  PageMap child = base;  // O(1) structural share
  const uint32_t divergent[] = {7, 1000, 1001, 2048, 4095};
  constexpr size_t kD = sizeof(divergent) / sizeof(divergent[0]);
  for (uint32_t page : divergent) {
    FillPage(buf, 4, page);
    child.Set(page, store.Publish(buf));
  }

  std::vector<PageRef> drain;
  const size_t visited = child.ReleaseInto(&drain);
  // Owned spine only: the D path copies (≤ height nodes each, root shared
  // among them) — a full-tree walk would visit ~4369 nodes.
  EXPECT_LE(visited, 1 + kD * kHeight);
  EXPECT_GE(visited, static_cast<size_t>(kHeight));
  // Every copied leaf contributes its full 16-slot run of refs.
  EXPECT_GE(drain.size(), kD);
  EXPECT_LE(drain.size(), kD * 16);

  store.ReleaseBatch(drain);
  // The D divergent blobs died (their only refs were the child's); everything
  // the base holds is untouched and readable.
  EXPECT_EQ(store.stats().live_blobs, kPages);
  for (uint32_t page : {7u, 1000u, 2048u, 4095u, 0u, 555u}) {
    FillPage(buf, 3, page);
    PageRef ref = base.Get(page);
    ASSERT_TRUE(ref.valid());
    EXPECT_TRUE(ref.EqualsPage(buf)) << "base page " << page << " corrupted by child release";
  }
}

// --- Session-level parity across engines -----------------------------------------

BacktrackSession* Session() { return static_cast<BacktrackSession*>(CurrentExecutor()); }

constexpr uint32_t kStormPages = 24;

struct StormScratch {
  char mailbox[32];
  uint8_t* buf;
  int round;
};

// Each resume dirties a sliding window of pages, so consecutive checkpoints
// share all but a small delta — the shape a release storm reclaims.
void StormGuest(void*) {
  auto* scratch = GuestNew<StormScratch>(Session()->heap());
  scratch->buf = static_cast<uint8_t*>(
      Session()->heap()->Alloc(static_cast<size_t>(kStormPages) * kPageSize));
  scratch->round = 0;
  std::memset(scratch->buf, 0xA1, static_cast<size_t>(kStormPages) * kPageSize);
  for (;;) {
    std::snprintf(scratch->mailbox, sizeof(scratch->mailbox), "r=%d", scratch->round);
    size_t len = sys_yield(scratch->mailbox, sizeof(scratch->mailbox));
    if (len == 0) {
      return;
    }
    scratch->round += std::atoi(scratch->mailbox);
    for (uint32_t i = 0; i < 4; ++i) {
      uint32_t page = (static_cast<uint32_t>(scratch->round) * 4 + i) % kStormPages;
      std::memset(scratch->buf + static_cast<size_t>(page) * kPageSize,
                  (scratch->round * 31 + static_cast<int>(i)) & 0xFF, kPageSize);
    }
  }
}

struct StormRun {
  PageStore::Stats store;
  SessionStats session;
};

StormRun RunCheckpointStorm(SnapshotMode mode, bool batched) {
  SessionOptions options;
  options.arena_bytes = 8ull << 20;
  options.guest_stack_bytes = 256 * 1024;
  options.snapshot_mode = mode;
  options.batched_release = batched;
  options.output = [](std::string_view) {};
  auto store = std::make_shared<PageStore>();
  options.store = store;

  StormRun run;
  {
    BacktrackSession session(options);
    EXPECT_TRUE(session.Run(&StormGuest, nullptr).ok());
    auto tokens = session.TakeNewCheckpoints();
    EXPECT_EQ(tokens.size(), 1u);
    Checkpoint root = std::move(tokens[0]);
    // Star shape: every sibling forks from the same root, sharing all pages
    // but its own small dirty delta — so releasing a sibling actually kills
    // its delta blobs (a linear chain would keep each map pinned through its
    // child's parent link).
    std::vector<Checkpoint> siblings;
    for (int i = 0; i < 16; ++i) {
      // Distinct increments → distinct rounds → every sibling's dirty delta is
      // unique content (its blobs die with its release, not via dedup peers).
      const std::string msg = std::to_string(i + 1);
      EXPECT_TRUE(session.Resume(root, msg.c_str(), msg.size() + 1).ok());
      auto next = session.TakeNewCheckpoints();
      EXPECT_EQ(next.size(), 1u);
      siblings.push_back(std::move(next[0]));
    }
    // Release storm: all siblings, then the root.
    while (!siblings.empty()) {
      EXPECT_TRUE(session.ReleaseCheckpoint(siblings.back()).ok());
      siblings.pop_back();
    }
    EXPECT_TRUE(session.ReleaseCheckpoint(root).ok());
    run.session = session.stats();
    run.store = store->stats();
  }
  return run;
}

class ReleaseStormParityTest : public ::testing::TestWithParam<SnapshotMode> {};

TEST_P(ReleaseStormParityTest, BatchedResidencyMatchesPerRef) {
  const char* reason = nullptr;
  if (SkipForMode(GetParam(), &reason)) {
    GTEST_SKIP() << reason;
  }
  const StormRun per_ref = RunCheckpointStorm(GetParam(), /*batched=*/false);
  const StormRun batched = RunCheckpointStorm(GetParam(), /*batched=*/true);

  // End-state residency is bit-identical: the batch changes lock traffic and
  // walk order, never which blobs live or die.
  EXPECT_EQ(per_ref.store.live_blobs, batched.store.live_blobs);
  EXPECT_EQ(per_ref.store.live_bytes, batched.store.live_bytes);
  EXPECT_EQ(per_ref.store.free_blobs, batched.store.free_blobs);
  EXPECT_EQ(per_ref.store.free_bytes, batched.store.free_bytes);
  EXPECT_EQ(per_ref.store.total_published, batched.store.total_published);
  EXPECT_EQ(per_ref.session.checkpoints, batched.session.checkpoints);
  EXPECT_EQ(per_ref.session.resumes, batched.session.resumes);

  // Only the batched run went through ReleaseBatch, and it mirrored the
  // counters into the session stats.
  EXPECT_EQ(per_ref.store.release_batches, 0u);
  EXPECT_GT(batched.store.release_batches, 0u);
  EXPECT_GT(batched.store.blobs_recycled_batched, 0u);
  EXPECT_LE(batched.store.release_shard_locks,
            batched.store.release_batches * kPageStoreShards);
  EXPECT_EQ(batched.session.release_batches, batched.store.release_batches);
  EXPECT_EQ(batched.session.blobs_recycled_batched, batched.store.blobs_recycled_batched);
}

INSTANTIATE_TEST_SUITE_P(AllEngines, ReleaseStormParityTest,
                         ::testing::Values(SnapshotMode::kCow, SnapshotMode::kFullCopy,
                                           SnapshotMode::kIncremental, SnapshotMode::kSoftDirty,
                                           SnapshotMode::kAdaptive),
                         [](const ::testing::TestParamInfo<SnapshotMode>& info) {
                           return SnapshotModeName(info.param);
                         });

// --- Concurrency: batched releases into one shared store -------------------------

// Sessions on different worker threads run checkpoint storms against one
// shared store, each draining its releases through ReleaseBatch. The store's
// refcount invariant must hold throughout: after every session dies, only the
// canonical zero page (the store's own pin) may remain live.
TEST(ReleaseBatchConcurrencyTest, ConcurrentSessionStormsSharedStore) {
  auto store = std::make_shared<PageStore>();
  constexpr int kSessions = 4;
  std::vector<std::thread> threads;
  threads.reserve(kSessions);
  for (int t = 0; t < kSessions; ++t) {
    threads.emplace_back([store] {
      SessionOptions options;
      options.arena_bytes = 8ull << 20;
      options.guest_stack_bytes = 256 * 1024;
      // Fault-free engine: safe under TSan and off the main thread.
      options.snapshot_mode = SnapshotMode::kIncremental;
      options.store = store;
      options.output = [](std::string_view) {};
      BacktrackSession session(options);
      ASSERT_TRUE(session.Run(&StormGuest, nullptr).ok());
      auto tokens = session.TakeNewCheckpoints();
      ASSERT_EQ(tokens.size(), 1u);
      std::vector<Checkpoint> chain;
      chain.push_back(std::move(tokens[0]));
      for (int i = 0; i < 8; ++i) {
        ASSERT_TRUE(session.Resume(chain.back(), "1", 2).ok());
        auto next = session.TakeNewCheckpoints();
        ASSERT_EQ(next.size(), 1u);
        chain.push_back(std::move(next[0]));
      }
      // Half released explicitly mid-life, half dropped with the session (the
      // destructor reclaims them through the same batch path).
      for (int i = 0; i < 4; ++i) {
        ASSERT_TRUE(session.ReleaseCheckpoint(chain[static_cast<size_t>(i) * 2]).ok());
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }

  const PageStore::Stats stats = store->stats();
  EXPECT_LE(stats.live_blobs, 1u);  // only the store's pinned zero page
  EXPECT_GT(stats.release_batches, 0u);
  EXPECT_GT(stats.blobs_recycled_batched, 0u);
}

}  // namespace
}  // namespace lw
