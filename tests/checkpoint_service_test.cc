// CheckpointService host-layer tests: the generic boot/mailbox/park/drain
// machinery every service shares — boot-once lifecycle, exactly-one-checkpoint
// protocol, raw request/response framing, typed-handle validation across two
// hosts, and the WireReader/WireWriter bounds behavior the codecs rely on.

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "src/core/guest_api.h"
#include "src/service/host.h"
#include "src/util/vec.h"

namespace lw {
namespace {

// A minimal codec: the response is "<accumulated text>"; each request appends
// its bytes. State is a Vec<char> in the arena — the canonical branchable
// guest state.
void EchoServe(GuestMailbox& mailbox, void* arg) {
  (void)arg;
  Vec<char> text;
  while (true) {
    WireWriter w(mailbox.data(), mailbox.capacity());
    w.u32(static_cast<uint32_t>(text.size()));
    w.bytes(text.data(), text.size());
    LW_CHECK(!w.overflowed());
    size_t len = mailbox.Park();
    for (size_t i = 0; i < len; ++i) {
      text.push_back(static_cast<char>(mailbox.data()[i]));
    }
  }
}

// A codec that breaks the protocol: the first extension forks (sys_guess) and
// parks a checkpoint on *each* branch, so one drive yields two checkpoints.
void DoubleParkServe(GuestMailbox& mailbox, void* arg) {
  (void)arg;
  std::memset(mailbox.data(), 0, 4);
  mailbox.Park();
  sys_guess(2);
  while (true) {
    mailbox.Park();
  }
}

CheckpointServiceOptions SmallHost() {
  CheckpointServiceOptions options;
  options.arena_bytes = 8ull << 20;
  options.mailbox_bytes = 4096;
  return options;
}

std::string ReadEcho(CheckpointService& host, const Checkpoint& cp) {
  uint32_t len = 0;
  EXPECT_TRUE(host.ReadResponse(cp, &len, 4).ok());
  std::vector<uint8_t> full(4 + len);
  EXPECT_TRUE(host.ReadResponse(cp, full.data(), full.size()).ok());
  return std::string(full.begin() + 4, full.end());
}

TEST(CheckpointServiceTest, BootExtendBranchRelease) {
  CheckpointService host(SmallHost());
  EXPECT_FALSE(host.booted());
  auto root = host.Boot(&EchoServe, nullptr);
  ASSERT_TRUE(root.ok());
  EXPECT_TRUE(host.booted());
  EXPECT_EQ(ReadEcho(host, *root), "");

  auto left = host.Extend(*root, "ab", 2);
  auto right = host.Extend(*root, "xyz", 3);
  ASSERT_TRUE(left.ok());
  ASSERT_TRUE(right.ok());
  // Divergent branches of one parent: neither sees the other's request.
  EXPECT_EQ(ReadEcho(host, *left), "ab");
  EXPECT_EQ(ReadEcho(host, *right), "xyz");

  auto deeper = host.Extend(*left, "c", 1);
  ASSERT_TRUE(deeper.ok());
  EXPECT_EQ(ReadEcho(host, *deeper), "abc");

  // Releasing the parent keeps descendants working.
  EXPECT_TRUE(host.Release(*root).ok());
  EXPECT_FALSE(root->valid());
  auto after = host.Extend(*deeper, "d", 1);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(ReadEcho(host, *after), "abcd");
}

TEST(CheckpointServiceTest, LifecycleErrors) {
  CheckpointService host(SmallHost());
  Checkpoint none;
  EXPECT_EQ(host.Extend(none, "x", 1).status().code(), ErrorCode::kBadState);  // before boot
  auto root = host.Boot(&EchoServe, nullptr);
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(host.Boot(&EchoServe, nullptr).status().code(), ErrorCode::kBadState);
  // Empty handle after boot: InvalidArgument from the session's validation.
  EXPECT_EQ(host.Extend(none, "x", 1).status().code(), ErrorCode::kInvalidArgument);
  // Oversized request rejected before touching the guest.
  std::vector<uint8_t> big(host.mailbox_capacity() + 1, 0);
  EXPECT_EQ(host.Extend(*root, big.data(), big.size()).status().code(),
            ErrorCode::kInvalidArgument);
}

TEST(CheckpointServiceTest, HandlesAreHostAffine) {
  CheckpointService a(SmallHost());
  CheckpointService b(SmallHost());
  auto root_a = a.Boot(&EchoServe, nullptr);
  auto root_b = b.Boot(&EchoServe, nullptr);
  ASSERT_TRUE(root_a.ok());
  ASSERT_TRUE(root_b.ok());
  EXPECT_EQ(b.Extend(*root_a, "x", 1).status().code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(b.Release(*root_a).code(), ErrorCode::kInvalidArgument);
  uint32_t word = 0;
  EXPECT_EQ(b.ReadResponse(*root_a, &word, 4).code(), ErrorCode::kInvalidArgument);
  EXPECT_TRUE(root_a->valid());
  EXPECT_TRUE(a.Extend(*root_a, "x", 1).ok());
}

TEST(CheckpointServiceTest, DoubleParkIsProtocolError) {
  CheckpointService host(SmallHost());
  auto root = host.Boot(&DoubleParkServe, nullptr);
  ASSERT_TRUE(root.ok());
  auto broken = host.Extend(*root, "x", 1);
  EXPECT_EQ(broken.status().code(), ErrorCode::kInternal);
}

TEST(WireCodecTest, ReaderRejectsOverflow) {
  uint8_t buf[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  WireReader r(buf, sizeof(buf));
  uint32_t a = 0;
  EXPECT_TRUE(r.u32(&a));
  EXPECT_EQ(r.remaining(), 4u);
  uint64_t b = 0;
  EXPECT_FALSE(r.u64(&b));  // 8 bytes wanted, 4 left
  EXPECT_FALSE(r.ok());     // failure latches
  uint8_t c = 0;
  EXPECT_FALSE(r.u8(&c));  // even though a byte remains

  WireReader empty(buf, 0);
  EXPECT_FALSE(empty.u8(&c));
  uint8_t sink[16];
  WireReader partial(buf, 8);
  EXPECT_FALSE(partial.bytes(sink, 9));
}

TEST(WireCodecTest, WriterLatchesOverflow) {
  uint8_t buf[8];
  WireWriter w(buf, sizeof(buf));
  EXPECT_TRUE(w.u32(7));
  EXPECT_TRUE(w.u32(9));
  EXPECT_FALSE(w.u8(1));  // full
  EXPECT_TRUE(w.overflowed());
  EXPECT_EQ(w.written(), 8u);  // never past capacity
}

}  // namespace
}  // namespace lw
