// BitBlaster tests: gate encodings, modular arithmetic against native uint
// semantics (parameterized random sweeps), comparisons, mux, and small
// constraint-solving end-to-end checks (factoring, linear equations).

#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>

#include "src/solver/bv.h"
#include "src/solver/sat.h"
#include "src/util/rng.h"

namespace lw {
namespace {

uint64_t MaskOf(int width) { return width == 64 ? ~0ull : (1ull << width) - 1; }

// Fixes a term to a concrete value via assertions.
void Pin(BitBlaster* bb, const BitBlaster::Term& t, uint64_t value) {
  bb->AssertEq(t, bb->Constant(value, static_cast<int>(t.size())));
}

TEST(BitBlasterTest, ConstantsDecode) {
  Solver s;
  BitBlaster bb(&s);
  auto c = bb.Constant(0xdeadbeef, 32);
  ASSERT_TRUE(s.Solve().IsTrue());
  EXPECT_EQ(bb.ModelValue(c), 0xdeadbeefu);
}

TEST(BitBlasterTest, GateTruthTables) {
  Solver s;
  BitBlaster bb(&s);
  Lit t = bb.TrueLit();
  Lit f = bb.FalseLit();
  // Folding paths.
  EXPECT_EQ(bb.AndGate(t, t), t);
  EXPECT_EQ(bb.AndGate(t, f), f);
  EXPECT_EQ(bb.AndGate(f, f), f);
  EXPECT_EQ(bb.OrGate(f, f), f);
  EXPECT_EQ(bb.OrGate(t, f), t);
  EXPECT_EQ(bb.XorGate(t, f), t);
  EXPECT_EQ(bb.XorGate(t, t), f);
  // Non-constant gates verified by solving.
  Lit a = bb.NewBool();
  Lit b = bb.NewBool();
  Lit o = bb.AndGate(a, b);
  bb.Assert(o);
  ASSERT_TRUE(s.Solve().IsTrue());
  EXPECT_TRUE(s.ModelValue(LitVar(a)).Xor(LitSign(a)).IsTrue());
  EXPECT_TRUE(s.ModelValue(LitVar(b)).Xor(LitSign(b)).IsTrue());
}

class BvArithTest : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(BvArithTest, MatchesNativeArithmetic) {
  auto [width, seed] = GetParam();
  Rng rng(seed);
  const uint64_t mask = MaskOf(width);
  for (int round = 0; round < 8; ++round) {
    uint64_t av = rng.Next() & mask;
    uint64_t bv = rng.Next() & mask;
    int k = static_cast<int>(rng.Next() % static_cast<uint64_t>(width));

    Solver s;
    BitBlaster bb(&s);
    auto a = bb.NewTerm(width);
    auto b = bb.NewTerm(width);
    Pin(&bb, a, av);
    Pin(&bb, b, bv);

    auto sum = bb.Add(a, b);
    auto diff = bb.Sub(a, b);
    auto prod = bb.Mul(a, b);
    auto neg = bb.Neg(a);
    auto andv = bb.And(a, b);
    auto orv = bb.Or(a, b);
    auto xorv = bb.Xor(a, b);
    auto shl = bb.ShlConst(a, k);
    auto shr = bb.LshrConst(a, k);

    ASSERT_TRUE(s.Solve().IsTrue());
    EXPECT_EQ(bb.ModelValue(sum), (av + bv) & mask);
    EXPECT_EQ(bb.ModelValue(diff), (av - bv) & mask);
    EXPECT_EQ(bb.ModelValue(prod), (av * bv) & mask);
    EXPECT_EQ(bb.ModelValue(neg), (~av + 1) & mask);
    EXPECT_EQ(bb.ModelValue(andv), av & bv);
    EXPECT_EQ(bb.ModelValue(orv), av | bv);
    EXPECT_EQ(bb.ModelValue(xorv), av ^ bv);
    EXPECT_EQ(bb.ModelValue(shl), (av << k) & mask);
    EXPECT_EQ(bb.ModelValue(shr), (av & mask) >> k);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, BvArithTest,
                         ::testing::Values(std::make_tuple(4, 1), std::make_tuple(8, 2),
                                           std::make_tuple(13, 3), std::make_tuple(16, 4),
                                           std::make_tuple(32, 5)));

class BvCompareTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BvCompareTest, ComparisonsMatchNative) {
  Rng rng(GetParam());
  const int width = 8;
  for (int round = 0; round < 16; ++round) {
    uint64_t av = rng.Next() & 0xff;
    uint64_t bv = rng.Next() & 0xff;
    Solver s;
    BitBlaster bb(&s);
    auto a = bb.NewTerm(width);
    auto b = bb.NewTerm(width);
    Pin(&bb, a, av);
    Pin(&bb, b, bv);
    Lit eq = bb.Eq(a, b);
    Lit ult = bb.Ult(a, b);
    Lit ule = bb.Ule(a, b);
    Lit slt = bb.Slt(a, b);
    ASSERT_TRUE(s.Solve().IsTrue());
    auto truth = [&s](Lit p) { return s.ModelValue(LitVar(p)).Xor(LitSign(p)).IsTrue(); };
    EXPECT_EQ(truth(eq), av == bv);
    EXPECT_EQ(truth(ult), av < bv);
    EXPECT_EQ(truth(ule), av <= bv);
    EXPECT_EQ(truth(slt), static_cast<int8_t>(av) < static_cast<int8_t>(bv));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BvCompareTest, ::testing::Values(11, 12, 13));

TEST(BitBlasterTest, MuxSelects) {
  for (bool cond_val : {false, true}) {
    Solver s;
    BitBlaster bb(&s);
    Lit cond = bb.NewBool();
    bb.Assert(cond_val ? cond : ~cond);
    auto a = bb.Constant(0xAA, 8);
    auto b = bb.Constant(0x55, 8);
    auto m = bb.Mux(cond, a, b);
    ASSERT_TRUE(s.Solve().IsTrue());
    EXPECT_EQ(bb.ModelValue(m), cond_val ? 0xAAu : 0x55u);
  }
}

TEST(BitBlasterTest, SolveLinearEquation) {
  // Find x with 3x + 7 == 31 (mod 256) → x == 8.
  Solver s;
  BitBlaster bb(&s);
  auto x = bb.NewTerm(8);
  auto lhs = bb.Add(bb.Mul(bb.Constant(3, 8), x), bb.Constant(7, 8));
  bb.Assert(bb.Eq(lhs, bb.Constant(31, 8)));
  ASSERT_TRUE(s.Solve().IsTrue());
  EXPECT_EQ((3 * bb.ModelValue(x) + 7) & 0xff, 31u);
}

TEST(BitBlasterTest, FactorsComposite) {
  // Factor 143 = 11 × 13 over 8-bit factors > 1.
  Solver s;
  BitBlaster bb(&s);
  auto a = bb.NewTerm(8);
  auto b = bb.NewTerm(8);
  auto prod16 = bb.Mul(bb.Or(bb.Constant(0, 16), [&] {
                         // zero-extend helper: place a/b into 16-bit terms
                         BitBlaster::Term t = a;
                         t.resize(16, bb.FalseLit());
                         return t;
                       }()),
                       [&] {
                         BitBlaster::Term t = b;
                         t.resize(16, bb.FalseLit());
                         return t;
                       }());
  bb.Assert(bb.Eq(prod16, bb.Constant(143, 16)));
  bb.Assert(bb.Ult(bb.Constant(1, 8), a));
  bb.Assert(bb.Ult(bb.Constant(1, 8), b));
  ASSERT_TRUE(s.Solve().IsTrue());
  uint64_t fa = bb.ModelValue(a);
  uint64_t fb = bb.ModelValue(b);
  EXPECT_EQ(fa * fb, 143u);
  EXPECT_GT(fa, 1u);
  EXPECT_GT(fb, 1u);
}

TEST(BitBlasterTest, UnsatContradiction) {
  Solver s;
  BitBlaster bb(&s);
  auto x = bb.NewTerm(8);
  bb.Assert(bb.Eq(x, bb.Constant(3, 8)));
  bb.Assert(bb.Eq(x, bb.Constant(4, 8)));
  EXPECT_TRUE(s.Solve().IsFalse());
}

TEST(BitBlasterTest, PythagoreanTriple) {
  // a² + b² == c² with 0 < a ≤ b < c ≤ 15 has solutions (3,4,5) style.
  Solver s;
  BitBlaster bb(&s);
  auto widen = [&bb](const BitBlaster::Term& t) {
    BitBlaster::Term w = t;
    w.resize(8, bb.FalseLit());
    return w;
  };
  auto a = bb.NewTerm(4);
  auto b = bb.NewTerm(4);
  auto c = bb.NewTerm(4);
  auto a2 = bb.Mul(widen(a), widen(a));
  auto b2 = bb.Mul(widen(b), widen(b));
  auto c2 = bb.Mul(widen(c), widen(c));
  bb.Assert(bb.Eq(bb.Add(a2, b2), c2));
  bb.Assert(bb.Ult(bb.Constant(0, 4), a));
  bb.Assert(bb.Ule(a, b));
  bb.Assert(bb.Ult(b, c));
  ASSERT_TRUE(s.Solve().IsTrue());
  uint64_t av = bb.ModelValue(a);
  uint64_t bv = bb.ModelValue(b);
  uint64_t cv = bb.ModelValue(c);
  EXPECT_EQ(av * av + bv * bv, cv * cv);
}

}  // namespace
}  // namespace lw
