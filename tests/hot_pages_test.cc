// Hot-page prediction tests: pages dirtied on nearly every extension are
// promoted out of the fault path (left writable, compared/copied eagerly).
// These tests pin the correctness contract — identical search results with
// prediction on, off, and across promotion/demotion transitions — plus the
// accounting that proves promotion actually happened.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "src/core/backtrack.h"
#include "src/snapshot/cow_engine.h"

namespace lw {
namespace {

// Guest: a long chain of single-extension guesses. Each round writes a
// counter into a fixed "hot" page and (every 8th round) into a rotating
// "cold" page, then verifies the previous round's value survived the
// snapshot/restore cycle exactly.
struct ChainArgs {
  int rounds = 64;
  bool corrupted = false;  // host-visible failure flag
};

void ChainGuest(void* arg) {
  auto* args = static_cast<ChainArgs*>(arg);
  auto* session = static_cast<BacktrackSession*>(CurrentExecutor());
  auto* hot = static_cast<uint32_t*>(session->heap()->Alloc(4096));
  auto* cold = static_cast<uint32_t*>(session->heap()->Alloc(16 * 4096));
  if (hot == nullptr || cold == nullptr) {
    args->corrupted = true;
    return;
  }
  std::memset(hot, 0, 4096);
  std::memset(cold, 0, 16 * 4096);
  if (!sys_guess_strategy(StrategyKind::kDfs)) {
    return;
  }
  for (int round = 0; round < args->rounds; ++round) {
    if (hot[0] != static_cast<uint32_t>(round)) {
      args->corrupted = true;  // restore lost or duplicated a write
    }
    hot[0] = static_cast<uint32_t>(round + 1);
    hot[1] = ~static_cast<uint32_t>(round);
    if (round % 8 == 0) {
      cold[(round / 8) * 1024] = static_cast<uint32_t>(round);
    }
    (void)sys_guess(1);
  }
  // Verify the cold writes all survived.
  for (int round = 0; round < args->rounds; round += 8) {
    if (cold[(round / 8) * 1024] != static_cast<uint32_t>(round)) {
      args->corrupted = true;
    }
  }
}

TEST(HotPagesTest, PromotionPreservesChainSemantics) {
  ChainArgs args;
  SessionOptions options;
  options.arena_bytes = 8ull << 20;
  options.output = [](std::string_view) {};
  BacktrackSession session(options);
  // Hot-page prediction lives in the extracted CowEngine, selected by mode.
  ASSERT_EQ(session.engine().mode(), SnapshotMode::kCow);
  ASSERT_TRUE(session.Run(&ChainGuest, &args).ok());
  EXPECT_FALSE(args.corrupted);
  // The fixed page (plus stack pages) must have been promoted.
  EXPECT_GT(session.stats().hot_promotions, 0u);
  EXPECT_GT(session.stats().snapshots, 60u);
}

// Drive the extracted CowEngine directly — no session, no guest: a host-side
// write/materialize loop must promote a repeatedly dirtied page, demote it
// after a clean streak, and keep round-trip contents exact throughout.
TEST(HotPagesTest, ExtractedCowEngineHotCycleDirect) {
  GuestArena::Layout layout;
  layout.arena_bytes = 2ull << 20;
  layout.stack_bytes = 256 * 1024;
  layout.guard_bytes = 16 * kPageSize;
  GuestArena arena(layout);
  PageStore store;
  SnapshotEngineStats stats;
  {
    SnapshotEngine::Env env;
    env.arena = &arena;
    env.store = &store;
    env.stats = &stats;
    env.page_map_kind = PageMapKind::kRadix;
    env.hot_page_limit = 8;
    CowEngine engine(env);

    // Phase 1: dirty the same page across many snapshots — it must go hot.
    std::vector<Snapshot> snaps(40);
    for (int round = 0; round < 12; ++round) {
      arena.PageAddr(5)[0] = static_cast<uint8_t>(round + 1);
      engine.Materialize(snaps[static_cast<size_t>(round)]);
    }
    EXPECT_GT(stats.hot_promotions, 0u);
    EXPECT_GT(engine.hot_page_count(), 0u);

    // Phase 2: stop touching it — unchanged-skip accounting, then demotion.
    for (int round = 12; round < 32; ++round) {
      engine.Materialize(snaps[static_cast<size_t>(round)]);
    }
    EXPECT_GT(stats.hot_unchanged_skips, 0u);
    EXPECT_GT(stats.hot_demotions, 0u);
    EXPECT_EQ(engine.hot_page_count(), 0u);

    // Phase 3: restores still reproduce each round's byte image exactly.
    engine.Restore(snaps[3]);
    EXPECT_EQ(arena.PageAddr(5)[0], 4);
    engine.Restore(snaps[10]);
    EXPECT_EQ(arena.PageAddr(5)[0], 11);
  }
  EXPECT_LE(store.stats().live_blobs, 1u);  // only the store-held zero blob remains
}

TEST(HotPagesTest, DisabledPredictionGivesSameResults) {
  ChainArgs with;
  ChainArgs without;
  for (bool enable : {true, false}) {
    SessionOptions options;
    options.arena_bytes = 8ull << 20;
    options.hot_page_limit = enable ? 64 : 0;
    options.output = [](std::string_view) {};
    BacktrackSession session(options);
    ChainArgs& args = enable ? with : without;
    ASSERT_TRUE(session.Run(&ChainGuest, &args).ok());
    EXPECT_FALSE(args.corrupted);
    if (!enable) {
      EXPECT_EQ(session.stats().hot_promotions, 0u);
    }
  }
}

// Branching guest: siblings write different values into the same (eventually
// hot) page; isolation must hold exactly as in the cold-page protocol.
struct BranchArgs {
  int depth = 6;
  uint64_t signature_sum = 0;  // order-independent checksum over leaves
  int leaves = 0;
};

void BranchGuest(void* arg) {
  auto* args = static_cast<BranchArgs*>(arg);
  auto* session = static_cast<BacktrackSession*>(CurrentExecutor());
  auto* page = static_cast<uint32_t*>(session->heap()->Alloc(4096));
  std::memset(page, 0, 4096);
  if (!sys_guess_strategy(StrategyKind::kDfs)) {
    return;
  }
  uint32_t signature = 1;
  for (int d = 0; d < args->depth; ++d) {
    int bit = sys_guess(2);
    signature = signature * 2 + static_cast<uint32_t>(bit);
    // The same word is written on every path: a stale value from a sibling
    // would corrupt the signature check below.
    if (page[7] != (d == 0 ? 0u : signature / 2)) {
      return;  // corruption: drop the leaf (detected by the count)
    }
    page[7] = signature;
  }
  args->signature_sum += page[7];
  args->leaves++;
  sys_guess_fail();
}

TEST(HotPagesTest, SiblingIsolationSurvivesPromotion) {
  BranchArgs args;
  SessionOptions options;
  options.arena_bytes = 8ull << 20;
  options.output = [](std::string_view) {};
  BacktrackSession session(options);
  ASSERT_TRUE(session.Run(&BranchGuest, &args).ok());
  EXPECT_EQ(args.leaves, 64);  // 2^6 leaves, none dropped to corruption
  // Sum of signatures over all depth-6 paths: signatures are 64..127 exactly.
  uint64_t expected = 0;
  for (uint32_t s = 64; s < 128; ++s) {
    expected += s;
  }
  EXPECT_EQ(args.signature_sum, expected);
}

// Demotion: dirty a page heavily (promote), then stop touching it for many
// snapshots; it must demote and the engine must keep producing correct runs.
struct DemoteArgs {
  bool corrupted = false;
};

void DemoteGuest(void* arg) {
  auto* args = static_cast<DemoteArgs*>(arg);
  auto* session = static_cast<BacktrackSession*>(CurrentExecutor());
  auto* page = static_cast<uint32_t*>(session->heap()->Alloc(4096));
  std::memset(page, 0, 4096);
  if (!sys_guess_strategy(StrategyKind::kDfs)) {
    return;
  }
  // Phase 1: promote (dirty every round).
  for (int round = 0; round < 12; ++round) {
    page[0] = static_cast<uint32_t>(round);
    (void)sys_guess(1);
  }
  // Phase 2: go cold for well past the demotion threshold.
  for (int round = 0; round < 40; ++round) {
    (void)sys_guess(1);
    if (page[0] != 11u) {
      args->corrupted = true;
    }
  }
  // Phase 3: write again (must fault back in via the CoW protocol).
  page[0] = 777;
  (void)sys_guess(1);
  if (page[0] != 777u) {
    args->corrupted = true;
  }
}

TEST(HotPagesTest, DemotionReentersCowProtocol) {
  DemoteArgs args;
  SessionOptions options;
  options.arena_bytes = 8ull << 20;
  options.output = [](std::string_view) {};
  BacktrackSession session(options);
  ASSERT_TRUE(session.Run(&DemoteGuest, &args).ok());
  EXPECT_FALSE(args.corrupted);
  EXPECT_GT(session.stats().hot_promotions, 0u);
  EXPECT_GT(session.stats().hot_demotions, 0u);
  EXPECT_GT(session.stats().hot_unchanged_skips, 0u);
}

// A tiny hot limit must clamp the hot set without affecting results.
TEST(HotPagesTest, HotLimitIsRespected) {
  ChainArgs args;
  SessionOptions options;
  options.arena_bytes = 8ull << 20;
  options.hot_page_limit = 1;
  options.output = [](std::string_view) {};
  BacktrackSession session(options);
  ASSERT_TRUE(session.Run(&ChainGuest, &args).ok());
  EXPECT_FALSE(args.corrupted);
  EXPECT_LE(session.stats().hot_promotions,
            session.stats().hot_demotions + 1);  // never >1 hot at a time
}

// n-queens must count identically across prediction settings (end-to-end).
struct QueensArgs {
  int n = 6;
};

void QueensGuest(void* arg) {
  int n = static_cast<QueensArgs*>(arg)->n;
  auto* session = static_cast<BacktrackSession*>(CurrentExecutor());
  struct Board {
    int col[16];
    int row[16];
    int ld[32];
    int rd[32];
  };
  auto* b = GuestNew<Board>(session->heap());
  std::memset(b, 0, sizeof(Board));
  if (sys_guess_strategy(StrategyKind::kDfs)) {
    for (int c = 0; c < n; ++c) {
      int r = sys_guess(n);
      if (b->row[r] || b->ld[r + c] || b->rd[n + r - c]) {
        sys_guess_fail();
      }
      b->col[c] = r;
      b->row[r] = c + 1;
      b->ld[r + c] = 1;
      b->rd[n + r - c] = 1;
    }
    sys_note_solution();
    sys_guess_fail();
  }
}

class HotLimitSweep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(HotLimitSweep, QueensCountInvariant) {
  QueensArgs args;
  SessionOptions options;
  options.arena_bytes = 8ull << 20;
  options.hot_page_limit = GetParam();
  options.output = [](std::string_view) {};
  BacktrackSession session(options);
  ASSERT_TRUE(session.Run(&QueensGuest, &args).ok());
  EXPECT_EQ(session.stats().solutions, 4u);  // 6-queens
}

INSTANTIATE_TEST_SUITE_P(Limits, HotLimitSweep, ::testing::Values(0u, 1u, 2u, 8u, 64u, 1024u));

}  // namespace
}  // namespace lw
