// Concurrency stress for the sharded PageStore: threads publishing identical
// and divergent pages through one store must agree on blob identity (dedup),
// keep refcounts exact (everything drains to zero), and survive compression /
// eviction racing Publish. These tests are the TSan CI job's main course —
// single-threaded suites cannot see lock-ordering or lost-update bugs in the
// shard layer.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "src/snapshot/budget_policy.h"
#include "src/snapshot/page_store.h"
#include "src/util/rng.h"

namespace lw {
namespace {

constexpr int kThreads = 4;

// Deterministic distinct page content: tag in the first word, compressible
// tail (long runs) so the compression tier has something to chew.
std::vector<uint8_t> TaggedPage(uint32_t tag) {
  std::vector<uint8_t> page(kPageSize, static_cast<uint8_t>(tag * 37 + 1));
  std::memcpy(page.data(), &tag, sizeof(tag));
  page[sizeof(tag)] = 1;  // never all-zero
  return page;
}

TEST(PageStoreConcurrencyTest, ConcurrentPublishersAgreeOnIdentity) {
  PageStore store;
  constexpr uint32_t kSharedTags = 64;    // content every thread publishes
  constexpr uint32_t kPrivateTags = 64;   // content unique to each thread
  std::vector<std::vector<PageRef>> shared_refs(kThreads);
  std::vector<std::vector<PageRef>> private_refs(kThreads);
  std::vector<uint32_t> owners(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    owners[static_cast<size_t>(t)] = store.RegisterOwner();
  }

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      uint32_t owner = owners[static_cast<size_t>(t)];
      for (uint32_t tag = 0; tag < kSharedTags; ++tag) {
        auto page = TaggedPage(tag);
        shared_refs[static_cast<size_t>(t)].push_back(store.Publish(page.data(), owner));
      }
      for (uint32_t tag = 0; tag < kPrivateTags; ++tag) {
        auto page = TaggedPage(1000 + static_cast<uint32_t>(t) * kPrivateTags + tag);
        private_refs[static_cast<size_t>(t)].push_back(store.Publish(page.data(), owner));
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }

  // Identity: every thread's ref to shared tag i is the *same blob*.
  for (uint32_t tag = 0; tag < kSharedTags; ++tag) {
    for (int t = 1; t < kThreads; ++t) {
      EXPECT_EQ(shared_refs[0][tag], shared_refs[static_cast<size_t>(t)][tag]);
    }
    EXPECT_EQ(shared_refs[0][tag].refcount(), static_cast<uint32_t>(kThreads));
  }
  // Content parity through the guarded reader.
  for (int t = 0; t < kThreads; ++t) {
    for (uint32_t tag = 0; tag < kSharedTags; ++tag) {
      auto want = TaggedPage(tag);
      EXPECT_TRUE(shared_refs[static_cast<size_t>(t)][tag].EqualsPage(want.data()));
    }
  }
  const PageStore::Stats stats = store.stats();
  EXPECT_EQ(stats.live_blobs, kSharedTags + kThreads * kPrivateTags);
  // Each shared tag: 1 publish allocates, kThreads-1 dedup — all cross-owner.
  EXPECT_EQ(stats.content_dedup_hits, kSharedTags * (kThreads - 1));
  EXPECT_EQ(stats.cross_session_dedup_hits, kSharedTags * (kThreads - 1));

  // Refcount integrity: dropping every ref drains the store to zero.
  shared_refs.clear();
  private_refs.clear();
  EXPECT_EQ(store.stats().live_blobs, 0u);
  store.TrimFreeList();
  EXPECT_EQ(store.stats().bytes_resident(), 0u);
}

TEST(PageStoreConcurrencyTest, CompressionRacingPublishKeepsBytesExact) {
  PageStoreOptions options;
  options.background_compaction = true;
  PageStore store(options);
  constexpr uint32_t kTags = 48;
  constexpr int kRounds = 40;
  std::atomic<bool> stop{false};

  // Compactor pressure from two directions: the background thread (via
  // RequestCompaction) and a foreground thread hammering the synchronous API.
  std::thread squeezer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      store.RequestCompaction(0);  // "compress everything you can"
      store.CompressOneCold();
    }
  });

  std::vector<std::thread> publishers;
  std::vector<std::vector<PageRef>> held(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    publishers.emplace_back([&, t] {
      Rng rng(static_cast<uint64_t>(t) + 1);
      std::vector<PageRef>& mine = held[static_cast<size_t>(t)];
      for (int round = 0; round < kRounds; ++round) {
        for (uint32_t tag = 0; tag < kTags; ++tag) {
          auto page = TaggedPage(tag);
          mine.push_back(store.Publish(page.data()));
        }
        // Churn: drop a random half so recycling races publish and compress.
        for (size_t i = 0; i < mine.size() / 2; ++i) {
          size_t victim = static_cast<size_t>(rng.Below(mine.size()));
          mine.erase(mine.begin() + static_cast<ptrdiff_t>(victim));
        }
      }
    });
  }
  for (auto& thread : publishers) {
    thread.join();
  }
  stop.store(true, std::memory_order_relaxed);
  squeezer.join();
  store.WaitForCompaction();

  // Every surviving ref must read back byte-exact through the guarded reader,
  // whether it is currently cold or raw.
  for (int t = 0; t < kThreads; ++t) {
    for (const PageRef& ref : held[static_cast<size_t>(t)]) {
      uint32_t tag = 0;
      ref.ReadBytes(0, &tag, sizeof(tag));
      auto want = TaggedPage(tag);
      std::vector<uint8_t> got(kPageSize);
      ref.CopyTo(got.data());
      ASSERT_EQ(std::memcmp(got.data(), want.data(), kPageSize), 0);
    }
  }
  held.clear();
  EXPECT_EQ(store.stats().live_blobs, 0u);
}

TEST(PageStoreConcurrencyTest, ConcurrentEnforceConvergesOnFleetCap) {
  // The ByteBudgetPolicy contract for shared stores: concurrent Enforce calls
  // from sharers (each evicting only its own frontier) are safe and jointly
  // converge on the one fleet-wide cap.
  PageStore store;
  constexpr uint32_t kPagesPerThread = 64;
  const uint64_t per_blob = sizeof(internal::PageBlob) + kPageSize;
  const uint64_t budget = (kThreads * kPagesPerThread / 4) * per_blob;

  std::vector<std::thread> sharers;
  for (int t = 0; t < kThreads; ++t) {
    sharers.emplace_back([&, t] {
      std::vector<PageRef> frontier;
      for (uint32_t i = 0; i < kPagesPerThread; ++i) {
        auto page = TaggedPage(static_cast<uint32_t>(t) * kPagesPerThread + i);
        frontier.push_back(store.Publish(page.data()));
      }
      ByteBudgetPolicy policy;
      for (int round = 0; round < 8; ++round) {
        policy.Enforce(store, budget, [&frontier] {
          if (frontier.empty()) {
            return false;
          }
          frontier.pop_back();
          return true;
        });
      }
      frontier.clear();
    });
  }
  for (auto& thread : sharers) {
    thread.join();
  }
  // Everything evictable was evicted and every thread exited cleanly; with all
  // frontiers dropped the store drains, and one final Enforce (nothing left to
  // evict) holds the cap.
  ByteBudgetPolicy().Enforce(store, budget, [] { return false; });
  EXPECT_LE(store.stats().bytes_live(), budget);
  EXPECT_EQ(store.stats().live_blobs, 0u);
}

TEST(PageStoreConcurrencyTest, RefChurnAcrossThreadsDrainsToZero) {
  // Refcount torture: threads share refs to one small set of blobs and
  // copy/drop them at random, so acquire/release and the recycle path race
  // with dedup publishes of the same content.
  PageStore store;
  constexpr uint32_t kTags = 8;
  constexpr int kOps = 4000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(static_cast<uint64_t>(t) * 31 + 7);
      std::vector<PageRef> mine;
      for (int op = 0; op < kOps; ++op) {
        if (mine.empty() || rng.Below(2) == 0) {
          auto page = TaggedPage(static_cast<uint32_t>(rng.Below(kTags)));
          mine.push_back(store.Publish(page.data()));
        } else if (rng.Below(2) == 0) {
          mine.push_back(mine[static_cast<size_t>(rng.Below(mine.size()))]);  // copy
        } else {
          mine.erase(mine.begin() + static_cast<ptrdiff_t>(rng.Below(mine.size())));
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(store.stats().live_blobs, 0u);
  EXPECT_LE(store.stats().free_blobs, store.stats().total_published);
  store.TrimFreeList();
  EXPECT_EQ(store.stats().bytes_resident(), 0u);
}

}  // namespace
}  // namespace lw
