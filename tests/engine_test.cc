// Tests for the pluggable SnapshotEngine layer: direct (session-less)
// materialize/restore round trips for all three backends, the incremental
// engine's delta accounting, and zero-page dedup in the PageStore (blob
// identity, refcounts, StructureBytes/bytes_live accounting).

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/core/arena.h"
#include "src/snapshot/engine.h"
#include "src/snapshot/incremental_engine.h"
#include "src/snapshot/page_store.h"
#include "src/snapshot/soft_dirty.h"

namespace lw {
namespace {

GuestArena::Layout SmallLayout() {
  GuestArena::Layout layout;
  layout.arena_bytes = 2ull << 20;
  layout.stack_bytes = 256 * 1024;
  layout.guard_bytes = 16 * kPageSize;
  return layout;
}

SnapshotEngine::Env MakeEnv(GuestArena* arena, PageStore* store, SnapshotEngineStats* stats,
                            SnapshotMode mode) {
  SnapshotEngine::Env env;
  env.arena = arena;
  env.store = store;
  env.stats = stats;
  env.page_map_kind = PageMapKind::kRadix;
  env.hot_page_limit = mode == SnapshotMode::kCow ? 64 : 0;
  return env;
}

// --- Round trips, identically for every backend ----------------------------------

class EngineRoundTripTest : public ::testing::TestWithParam<SnapshotMode> {};

TEST_P(EngineRoundTripTest, MaterializeRestoreRoundTrip) {
  if (GetParam() == SnapshotMode::kSoftDirty && !SoftDirtyTracker::Supported()) {
    GTEST_SKIP() << "soft-dirty unavailable: " << SoftDirtyTracker::Probe().ToString();
  }
  GuestArena arena(SmallLayout());
  PageStore store;
  SnapshotEngineStats stats;
  {
    auto engine = MakeSnapshotEngine(GetParam(), MakeEnv(&arena, &store, &stats, GetParam()));
    ASSERT_EQ(engine->mode(), GetParam());

    Snapshot snap_a;
    Snapshot snap_b;

    // State A: three pages with distinct fills.
    std::memset(arena.PageAddr(1), 0xA1, kPageSize);
    std::memset(arena.PageAddr(2), 0xA2, kPageSize);
    std::memset(arena.PageAddr(7), 0xA7, kPageSize);
    engine->Materialize(snap_a);

    // State B: one page changed, one new page touched.
    std::memset(arena.PageAddr(2), 0xB2, kPageSize);
    std::memset(arena.PageAddr(9), 0xB9, kPageSize);
    engine->Materialize(snap_b);

    // Scribble after the snapshot: must be rolled back by any restore.
    std::memset(arena.PageAddr(1), 0xEE, kPageSize);
    std::memset(arena.PageAddr(11), 0xEE, kPageSize);

    engine->Restore(snap_a);
    EXPECT_EQ(arena.PageAddr(1)[0], 0xA1);
    EXPECT_EQ(arena.PageAddr(2)[100], 0xA2);
    EXPECT_EQ(arena.PageAddr(7)[kPageSize - 1], 0xA7);
    EXPECT_EQ(arena.PageAddr(9)[0], 0x00);   // untouched in state A
    EXPECT_EQ(arena.PageAddr(11)[0], 0x00);  // scribble rolled back

    engine->Restore(snap_b);
    EXPECT_EQ(arena.PageAddr(1)[0], 0xA1);
    EXPECT_EQ(arena.PageAddr(2)[100], 0xB2);
    EXPECT_EQ(arena.PageAddr(9)[0], 0xB9);

    EXPECT_GT(engine->StructureBytes(), 0u);
    EXPECT_GT(stats.pages_materialized, 0u);
  }
  // Engine + snapshots dropped every ref; only the store-held canonical zero
  // blob may remain.
  EXPECT_LE(store.stats().live_blobs, 1u);
}

INSTANTIATE_TEST_SUITE_P(Backends, EngineRoundTripTest,
                         ::testing::Values(SnapshotMode::kCow, SnapshotMode::kFullCopy,
                                           SnapshotMode::kIncremental, SnapshotMode::kSoftDirty,
                                           SnapshotMode::kAdaptive),
                         [](const ::testing::TestParamInfo<SnapshotMode>& param) {
                           return std::string(SnapshotModeName(param.param));
                         });

// --- IncrementalCopyEngine accounting --------------------------------------------

TEST(IncrementalEngineTest, CopiesOnlyTheDelta) {
  GuestArena arena(SmallLayout());
  PageStore store;
  SnapshotEngineStats stats;
  {
    auto engine = MakeSnapshotEngine(SnapshotMode::kIncremental,
                                     MakeEnv(&arena, &store, &stats, SnapshotMode::kIncremental));
    Snapshot snap1;
    Snapshot snap2;

    std::memset(arena.PageAddr(3), 0x11, kPageSize);
    std::memset(arena.PageAddr(4), 0x22, kPageSize);
    std::memset(arena.PageAddr(5), 0x33, kPageSize);
    engine->Materialize(snap1);
    EXPECT_EQ(stats.incr_pages_copied, 3u);  // fresh arena: only the touched pages
    EXPECT_EQ(stats.pages_materialized, 3u);

    std::memset(arena.PageAddr(8), 0x44, kPageSize);
    engine->Materialize(snap2);
    EXPECT_EQ(stats.incr_pages_copied, 4u);  // +1: unchanged pages are not re-published

    // The scan visits every non-guard page on each call.
    uint32_t non_guard = 0;
    for (uint32_t p = 0; p < arena.num_pages(); ++p) {
      non_guard += arena.InGuard(p) ? 0 : 1;
    }
    EXPECT_EQ(stats.incr_pages_scanned, 2u * non_guard);

    // Restore to snap1: exactly one page (8) differs from live memory.
    engine->Restore(snap1);
    EXPECT_EQ(stats.pages_restored, 1u);
    EXPECT_EQ(arena.PageAddr(8)[0], 0x00);
    EXPECT_EQ(arena.PageAddr(3)[0], 0x11);
  }
  EXPECT_LE(store.stats().live_blobs, 1u);  // only the store-held zero blob remains
}

TEST(IncrementalEngineTest, TakesNoFaults) {
  GuestArena arena(SmallLayout());
  PageStore store;
  SnapshotEngineStats stats;
  {
    auto engine = MakeSnapshotEngine(SnapshotMode::kIncremental,
                                     MakeEnv(&arena, &store, &stats, SnapshotMode::kIncremental));
    Snapshot snap;
    std::memset(arena.PageAddr(1), 0x55, kPageSize);
    engine->Materialize(snap);
    std::memset(arena.PageAddr(1), 0x66, kPageSize);
    engine->Restore(snap);
    EXPECT_EQ(arena.PageAddr(1)[0], 0x55);
  }
  EXPECT_EQ(arena.cow_faults(), 0u);  // the whole point: no mprotect traffic
  EXPECT_FALSE(arena.cow_enabled());
}

TEST(IncrementalEngineTest, StructureBytesCountsMapAndTracker) {
  GuestArena arena(SmallLayout());
  PageStore store;
  SnapshotEngineStats stats;
  auto engine = MakeSnapshotEngine(SnapshotMode::kIncremental,
                                   MakeEnv(&arena, &store, &stats, SnapshotMode::kIncremental));
  // At least the dense tracker list (4 bytes/page) beyond the map structure.
  EXPECT_GE(engine->StructureBytes(),
            engine->current_map().StructureBytes() + arena.num_pages() * sizeof(uint32_t));
}

TEST(IncrementalEngineTest, ZeroedPagesDedupOnRepublish) {
  GuestArena arena(SmallLayout());
  PageStore store;
  SnapshotEngineStats stats;
  {
    auto engine = MakeSnapshotEngine(SnapshotMode::kIncremental,
                                     MakeEnv(&arena, &store, &stats, SnapshotMode::kIncremental));
    Snapshot snap1;
    Snapshot snap2;
    std::memset(arena.PageAddr(2), 0x77, kPageSize);
    engine->Materialize(snap1);
    uint64_t hits_before = stats.zero_dedup_hits;
    std::memset(arena.PageAddr(2), 0x00, kPageSize);  // back to all-zero
    engine->Materialize(snap2);
    // The republished page collapsed to the canonical zero blob and the engine
    // mirrored the store's dedup accounting into its stats block.
    EXPECT_EQ(stats.zero_dedup_hits, hits_before + 1);
    EXPECT_EQ(snap2.map.Get(2), store.ZeroPage());
  }
  EXPECT_LE(store.stats().live_blobs, 1u);  // only the store-held zero blob remains
}

// --- Zero-page dedup in the PageStore ----------------------------------------------

TEST(PageStoreDedupTest, PublishOfZeroPageCollapsesToCanonicalBlob) {
  PageStore store;
  std::vector<uint8_t> zeros(kPageSize, 0);
  PageRef canonical = store.ZeroPage();
  uint64_t live_before = store.stats().live_blobs;

  PageRef a = store.Publish(zeros.data());
  PageRef b = store.Publish(zeros.data());
  EXPECT_EQ(a, canonical);  // blob identity, not just content equality
  EXPECT_EQ(b, canonical);
  EXPECT_EQ(store.stats().zero_dedup_hits, 2u);
  EXPECT_EQ(store.stats().live_blobs, live_before);  // no new blobs allocated
}

TEST(PageStoreDedupTest, DedupBumpsRefcountOnCanonicalBlob) {
  PageStore store;
  std::vector<uint8_t> zeros(kPageSize, 0);
  PageRef canonical = store.ZeroPage();
  uint32_t base = canonical.refcount();
  {
    PageRef a = store.Publish(zeros.data());
    EXPECT_EQ(canonical.refcount(), base + 1);
    PageRef b = a;
    EXPECT_EQ(canonical.refcount(), base + 2);
  }
  EXPECT_EQ(canonical.refcount(), base);  // dedup'd refs release like any other
}

TEST(PageStoreDedupTest, NonZeroPagesStillAllocate) {
  PageStore store;
  std::vector<uint8_t> page(kPageSize, 0);
  page[kPageSize - 1] = 1;  // a single trailing nonzero byte defeats dedup
  PageRef a = store.Publish(page.data());
  EXPECT_NE(a, store.ZeroPage());
  EXPECT_EQ(store.stats().zero_dedup_hits, 0u);
  EXPECT_EQ(a.data()[kPageSize - 1], 1);
}

TEST(PageStoreDedupTest, DedupKeepsBytesLiveFlat) {
  PageStore store;
  std::vector<uint8_t> zeros(kPageSize, 0);
  PageRef canonical = store.ZeroPage();
  uint64_t bytes_before = store.stats().bytes_live();
  std::vector<PageRef> refs;
  for (int i = 0; i < 1000; ++i) {
    refs.push_back(store.Publish(zeros.data()));
  }
  // A sparse arena's worth of zero publishes costs zero additional residency.
  EXPECT_EQ(store.stats().bytes_live(), bytes_before);
  EXPECT_EQ(store.stats().zero_dedup_hits, 1000u);
}

}  // namespace
}  // namespace lw
