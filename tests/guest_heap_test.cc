// Tests for the in-arena guest heap allocator: correctness of boundary tags,
// coalescing, exhaustion behaviour, and a randomized malloc/free stress test
// validated by CheckConsistency.

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <vector>

#include "src/core/guest_heap.h"
#include "src/util/rng.h"
#include "src/util/vec.h"

namespace lw {
namespace {

class GuestHeapTest : public ::testing::Test {
 protected:
  void SetUp() override {
    mem_ = std::aligned_alloc(16, kBytes);
    ASSERT_NE(mem_, nullptr);
    heap_ = GuestHeap::Init(mem_, kBytes);
  }
  void TearDown() override { std::free(mem_); }

  static constexpr size_t kBytes = 1 << 20;
  void* mem_ = nullptr;
  GuestHeap* heap_ = nullptr;
};

TEST_F(GuestHeapTest, AllocReturnsAlignedWritableMemory) {
  void* p = heap_->Alloc(100);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 16, 0u);
  std::memset(p, 0xcd, 100);
  heap_->Free(p);
  EXPECT_TRUE(heap_->CheckConsistency());
}

TEST_F(GuestHeapTest, ZeroByteAllocSucceeds) {
  void* p = heap_->Alloc(0);
  ASSERT_NE(p, nullptr);
  heap_->Free(p);
}

TEST_F(GuestHeapTest, DistinctAllocationsDoNotOverlap) {
  std::vector<std::pair<uint8_t*, size_t>> blocks;
  for (size_t size : {8u, 24u, 100u, 4096u, 17u, 1u}) {
    auto* p = static_cast<uint8_t*>(heap_->Alloc(size));
    ASSERT_NE(p, nullptr);
    std::memset(p, static_cast<int>(blocks.size()), size);
    blocks.emplace_back(p, size);
  }
  for (size_t i = 0; i < blocks.size(); ++i) {
    for (size_t j = 0; j < blocks[i].second; ++j) {
      ASSERT_EQ(blocks[i].first[j], static_cast<uint8_t>(i));
    }
  }
  for (auto& [p, size] : blocks) {
    heap_->Free(p);
  }
  EXPECT_TRUE(heap_->CheckConsistency());
}

TEST_F(GuestHeapTest, FreeNullIsNoop) {
  heap_->Free(nullptr);
  EXPECT_TRUE(heap_->CheckConsistency());
}

TEST_F(GuestHeapTest, ExhaustionReturnsNull) {
  void* p = heap_->Alloc(kBytes * 2);
  EXPECT_EQ(p, nullptr);
  // Heap must still be usable after a failed allocation.
  void* q = heap_->Alloc(64);
  EXPECT_NE(q, nullptr);
  heap_->Free(q);
}

TEST_F(GuestHeapTest, CoalescingRecoversFullCapacity) {
  // Allocate nearly everything in chunks, free in interleaved order, then a
  // large allocation must succeed again (proves neighbours coalesce).
  std::vector<void*> chunks;
  while (void* p = heap_->Alloc(32 * 1024)) {
    chunks.push_back(p);
  }
  ASSERT_GT(chunks.size(), 20u);
  for (size_t i = 0; i < chunks.size(); i += 2) {
    heap_->Free(chunks[i]);
  }
  for (size_t i = 1; i < chunks.size(); i += 2) {
    heap_->Free(chunks[i]);
  }
  EXPECT_TRUE(heap_->CheckConsistency());
  void* big = heap_->Alloc(kBytes / 2);
  EXPECT_NE(big, nullptr);
  heap_->Free(big);
}

TEST_F(GuestHeapTest, StatsTrackUsage) {
  EXPECT_EQ(heap_->stats().bytes_in_use, 0u);
  void* a = heap_->Alloc(1000);
  void* b = heap_->Alloc(2000);
  uint64_t in_use = heap_->stats().bytes_in_use;
  EXPECT_GE(in_use, 3000u);
  heap_->Free(a);
  EXPECT_LT(heap_->stats().bytes_in_use, in_use);
  heap_->Free(b);
  EXPECT_EQ(heap_->stats().bytes_in_use, 0u);
  EXPECT_EQ(heap_->stats().alloc_calls, 2u);
  EXPECT_EQ(heap_->stats().free_calls, 2u);
  EXPECT_GE(heap_->stats().peak_bytes, in_use);
}

TEST_F(GuestHeapTest, UserRootSlot) {
  EXPECT_EQ(heap_->user_root(), nullptr);
  int x = 0;
  heap_->set_user_root(&x);
  EXPECT_EQ(heap_->user_root(), &x);
}

TEST_F(GuestHeapTest, GuestNewAndDelete) {
  struct Obj {
    int a;
    double b;
  };
  Obj* obj = GuestNew<Obj>(heap_, Obj{1, 2.0});
  ASSERT_NE(obj, nullptr);
  EXPECT_EQ(obj->a, 1);
  GuestDelete(heap_, obj);
  EXPECT_EQ(heap_->stats().bytes_in_use, 0u);
}

TEST_F(GuestHeapTest, HooksDriveVecIntoHeap) {
  ScopedAllocHooks scoped(heap_->Hooks());
  Vec<uint64_t> v;
  for (uint64_t i = 0; i < 10000; ++i) {
    v.push_back(i);
  }
  // The vector's storage must be inside the heap region.
  auto* p = reinterpret_cast<uint8_t*>(v.data());
  EXPECT_GE(p, static_cast<uint8_t*>(mem_));
  EXPECT_LT(p, static_cast<uint8_t*>(mem_) + kBytes);
  EXPECT_GT(heap_->stats().bytes_in_use, 10000u * 8u);
}

class GuestHeapStressTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GuestHeapStressTest, RandomAllocFreePreservesInvariants) {
  const size_t kBytes = 2 << 20;
  void* mem = std::aligned_alloc(16, kBytes);
  ASSERT_NE(mem, nullptr);
  GuestHeap* heap = GuestHeap::Init(mem, kBytes);
  Rng rng(GetParam());

  struct Live {
    uint8_t* ptr;
    size_t size;
    uint8_t tag;
  };
  std::vector<Live> live;
  for (int op = 0; op < 20000; ++op) {
    bool do_alloc = live.empty() || rng.Chance(0.55);
    if (do_alloc) {
      size_t size = 1 + static_cast<size_t>(rng.Below(2048));
      if (rng.Chance(0.02)) {
        size *= 64;  // occasional large blocks
      }
      auto* p = static_cast<uint8_t*>(heap->Alloc(size));
      if (p == nullptr) {
        continue;  // exhaustion is legal under stress
      }
      uint8_t tag = static_cast<uint8_t>(rng.Below(256));
      std::memset(p, tag, size);
      live.push_back({p, size, tag});
    } else {
      size_t i = static_cast<size_t>(rng.Below(live.size()));
      // Verify content integrity before freeing (no cross-block scribbling).
      for (size_t j = 0; j < live[i].size; ++j) {
        ASSERT_EQ(live[i].ptr[j], live[i].tag);
      }
      heap->Free(live[i].ptr);
      live[i] = live.back();
      live.pop_back();
    }
    if (op % 2500 == 0) {
      ASSERT_TRUE(heap->CheckConsistency());
    }
  }
  for (auto& entry : live) {
    heap->Free(entry.ptr);
  }
  EXPECT_TRUE(heap->CheckConsistency());
  EXPECT_EQ(heap->stats().bytes_in_use, 0u);
  std::free(mem);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GuestHeapStressTest, ::testing::Values(101, 202, 303, 404));

}  // namespace
}  // namespace lw
