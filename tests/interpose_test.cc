// Interposition tests: policy decisions (fail-closed), the io_* dispatcher, fd
// semantics, and — the §3.1 containment property — file side effects of failed
// extensions vanishing on backtrack inside a real BacktrackSession.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/core/backtrack.h"
#include "src/interpose/guest_io.h"
#include "src/interpose/policy.h"
#include "src/interpose/syscall.h"
#include "src/simfs/fs.h"

namespace lw {
namespace {

// --- policy ---

TEST(PolicyTest, SoundMinimalAllowsFilesDeniesRest) {
  InterposePolicy p = InterposePolicy::SoundMinimal();
  EXPECT_EQ(p.Check(GuestSyscall::kOpen), PolicyDecision::kAllow);
  EXPECT_EQ(p.Check(GuestSyscall::kWrite), PolicyDecision::kAllow);
  EXPECT_EQ(p.Check(GuestSyscall::kRename), PolicyDecision::kAllow);
  EXPECT_EQ(p.Check(GuestSyscall::kSocket), PolicyDecision::kDeny);
  EXPECT_EQ(p.Check(GuestSyscall::kConnect), PolicyDecision::kDeny);
  EXPECT_EQ(p.Check(GuestSyscall::kIoctl), PolicyDecision::kDeny);
  EXPECT_EQ(p.Check(GuestSyscall::kMmapDevice), PolicyDecision::kDeny);
  EXPECT_EQ(p.Check(GuestSyscall::kExec), PolicyDecision::kDeny);
}

TEST(PolicyTest, DenyAll) {
  InterposePolicy p = InterposePolicy::DenyAll();
  EXPECT_EQ(p.Check(GuestSyscall::kOpen), PolicyDecision::kDeny);
  EXPECT_EQ(p.Check(GuestSyscall::kRead), PolicyDecision::kDeny);
  EXPECT_EQ(p.Check(GuestSyscall::kSocket), PolicyDecision::kDeny);
}

TEST(PolicyTest, ReadOnlyDeniesMutation) {
  InterposePolicy p = InterposePolicy::ReadOnly();
  EXPECT_EQ(p.Check(GuestSyscall::kOpen), PolicyDecision::kAllow);
  EXPECT_EQ(p.Check(GuestSyscall::kRead), PolicyDecision::kAllow);
  EXPECT_EQ(p.Check(GuestSyscall::kStat), PolicyDecision::kAllow);
  EXPECT_EQ(p.Check(GuestSyscall::kWrite), PolicyDecision::kDeny);
  EXPECT_EQ(p.Check(GuestSyscall::kUnlink), PolicyDecision::kDeny);
  EXPECT_EQ(p.Check(GuestSyscall::kMkdir), PolicyDecision::kDeny);
}

TEST(PolicyTest, PathJail) {
  InterposePolicy p;
  p.set_path_jail("/work");
  EXPECT_EQ(p.CheckPath(GuestSyscall::kOpen, "/work"), PolicyDecision::kAllow);
  EXPECT_EQ(p.CheckPath(GuestSyscall::kOpen, "/work/sub/f"), PolicyDecision::kAllow);
  EXPECT_EQ(p.CheckPath(GuestSyscall::kOpen, "/workother"), PolicyDecision::kDeny);
  EXPECT_EQ(p.CheckPath(GuestSyscall::kOpen, "/etc/passwd"), PolicyDecision::kDeny);
}

TEST(SyscallStatsTest, NamesAndTotals) {
  SyscallStats s;
  s.invoked[static_cast<size_t>(GuestSyscall::kOpen)] = 3;
  s.denied[static_cast<size_t>(GuestSyscall::kSocket)] = 2;
  s.invoked[static_cast<size_t>(GuestSyscall::kSocket)] = 2;
  EXPECT_EQ(s.TotalInvoked(), 5u);
  EXPECT_EQ(s.TotalDenied(), 2u);
  std::string text = s.ToString();
  EXPECT_NE(text.find("open"), std::string::npos);
  EXPECT_NE(text.find("socket"), std::string::npos);
}

// --- dispatcher (host-side, no session) ---

class GuestIoTest : public ::testing::Test {
 protected:
  GuestIoTest() : io_(&fs_, InterposePolicy::SoundMinimal()), scoped_(&io_) {}

  SimFs fs_;
  GuestIo io_;
  ScopedGuestIo scoped_;
};

TEST_F(GuestIoTest, OpenCreateWriteReadRoundTrip) {
  int fd = io_open("/f.txt", kOpenRead | kOpenWrite | kOpenCreate);
  ASSERT_GE(fd, FdTable::kFirstFd);
  EXPECT_EQ(io_write(fd, "hello", 5), 5);
  EXPECT_EQ(io_lseek(fd, 0, SeekWhence::kSet), 0);
  char buf[8] = {};
  EXPECT_EQ(io_read(fd, buf, sizeof buf), 5);
  EXPECT_EQ(std::string(buf, 5), "hello");
  EXPECT_EQ(io_close(fd), 0);
}

TEST_F(GuestIoTest, OpenWithoutCreateFailsOnMissing) {
  EXPECT_EQ(io_open("/missing", kOpenRead), -static_cast<int>(ErrorCode::kNotFound));
}

TEST_F(GuestIoTest, OpenNeedsAccessMode) {
  EXPECT_EQ(io_open("/f", kOpenCreate), -static_cast<int>(ErrorCode::kInvalidArgument));
}

TEST_F(GuestIoTest, TruncFlagClearsContents) {
  int fd = io_open("/f", kOpenWrite | kOpenCreate);
  ASSERT_GE(fd, 0);
  EXPECT_EQ(io_write(fd, "0123456789", 10), 10);
  EXPECT_EQ(io_close(fd), 0);
  fd = io_open("/f", kOpenRead | kOpenWrite | kOpenTrunc);
  ASSERT_GE(fd, 0);
  SimFsStat st;
  ASSERT_EQ(io_fstat(fd, &st), 0);
  EXPECT_EQ(st.size, 0u);
  EXPECT_EQ(io_close(fd), 0);
}

TEST_F(GuestIoTest, AppendWritesLandAtEof) {
  int fd = io_open("/log", kOpenWrite | kOpenCreate | kOpenAppend);
  ASSERT_GE(fd, 0);
  EXPECT_EQ(io_write(fd, "aa", 2), 2);
  EXPECT_EQ(io_lseek(fd, 0, SeekWhence::kSet), 0);
  EXPECT_EQ(io_write(fd, "bb", 2), 2);  // must append, not overwrite
  SimFsStat st;
  ASSERT_EQ(io_fstat(fd, &st), 0);
  EXPECT_EQ(st.size, 4u);
  EXPECT_EQ(io_close(fd), 0);
}

TEST_F(GuestIoTest, PreadPwriteIgnoreOffset) {
  int fd = io_open("/f", kOpenRead | kOpenWrite | kOpenCreate);
  ASSERT_GE(fd, 0);
  EXPECT_EQ(io_pwrite(fd, "XYZ", 3, 100), 3);
  char buf[4] = {};
  EXPECT_EQ(io_pread(fd, buf, 3, 100), 3);
  EXPECT_EQ(std::string(buf, 3), "XYZ");
  // File offset unmoved by p-ops.
  EXPECT_EQ(io_lseek(fd, 0, SeekWhence::kCur), 0);
  EXPECT_EQ(io_close(fd), 0);
}

TEST_F(GuestIoTest, ReadOnWriteOnlyFdFails) {
  int fd = io_open("/f", kOpenWrite | kOpenCreate);
  ASSERT_GE(fd, 0);
  char b;
  EXPECT_EQ(io_read(fd, &b, 1), -static_cast<int>(ErrorCode::kInvalidArgument));
  EXPECT_EQ(io_close(fd), 0);
}

TEST_F(GuestIoTest, LseekWhence) {
  int fd = io_open("/f", kOpenRead | kOpenWrite | kOpenCreate);
  ASSERT_GE(fd, 0);
  EXPECT_EQ(io_write(fd, "0123456789", 10), 10);
  EXPECT_EQ(io_lseek(fd, -3, SeekWhence::kEnd), 7);
  EXPECT_EQ(io_lseek(fd, 2, SeekWhence::kCur), 9);
  EXPECT_EQ(io_lseek(fd, -100, SeekWhence::kSet), -static_cast<int>(ErrorCode::kInvalidArgument));
  EXPECT_EQ(io_close(fd), 0);
}

TEST_F(GuestIoTest, DirectoriesCannotBeOpened) {
  ASSERT_EQ(io_mkdir("/d"), 0);
  EXPECT_EQ(io_open("/d", kOpenRead), -static_cast<int>(ErrorCode::kBadState));
}

TEST_F(GuestIoTest, ReaddirPacksNames) {
  ASSERT_EQ(io_mkdir("/d"), 0);
  ASSERT_GE(io_open("/d/b", kOpenWrite | kOpenCreate), 0);
  ASSERT_GE(io_open("/d/a", kOpenWrite | kOpenCreate), 0);
  char buf[64];
  int64_t n = io_readdir("/d", buf, sizeof buf);
  ASSERT_GT(n, 0);
  EXPECT_EQ(std::string(buf, n), std::string("a\0b\0", 4));
  char tiny[2];
  EXPECT_EQ(io_readdir("/d", tiny, sizeof tiny), -static_cast<int>(ErrorCode::kOutOfRange));
}

TEST_F(GuestIoTest, RenameAndUnlink) {
  ASSERT_GE(io_open("/a", kOpenWrite | kOpenCreate), 0);
  EXPECT_EQ(io_rename("/a", "/b"), 0);
  SimFsStat st;
  EXPECT_EQ(io_stat("/b", &st), 0);
  EXPECT_EQ(io_stat("/a", &st), -static_cast<int>(ErrorCode::kNotFound));
  EXPECT_EQ(io_unlink("/b"), 0);
  EXPECT_EQ(io_stat("/b", &st), -static_cast<int>(ErrorCode::kNotFound));
}

TEST_F(GuestIoTest, ExternalChannelsFailClosed) {
  EXPECT_EQ(io_socket(), -static_cast<int>(ErrorCode::kPermissionDenied));
  EXPECT_EQ(io_connect(), -static_cast<int>(ErrorCode::kPermissionDenied));
  EXPECT_EQ(io_ioctl(5, 0x1234), -static_cast<int>(ErrorCode::kPermissionDenied));
  EXPECT_EQ(io_.stats().TotalDenied(), 3u);
}

TEST_F(GuestIoTest, StdinReadsEof) {
  char b;
  EXPECT_EQ(io_read(0, &b, 1), 0);
}

TEST_F(GuestIoTest, BadPathsRejected) {
  EXPECT_EQ(io_open("relative", kOpenRead), -static_cast<int>(ErrorCode::kPermissionDenied));
  EXPECT_EQ(io_open(nullptr, kOpenRead), -static_cast<int>(ErrorCode::kPermissionDenied));
  EXPECT_EQ(io_open("/..", kOpenRead), -static_cast<int>(ErrorCode::kPermissionDenied));
}

TEST(GuestIoNoCurrentTest, CallsFailWithBadState) {
  EXPECT_EQ(io_open("/f", kOpenRead), -static_cast<int>(ErrorCode::kBadState));
  EXPECT_EQ(io_close(3), -static_cast<int>(ErrorCode::kBadState));
  char b;
  EXPECT_EQ(io_read(3, &b, 1), -static_cast<int>(ErrorCode::kBadState));
}

TEST(GuestIoPolicyTest, ReadOnlyBlocksOpenForWrite) {
  SimFs fs;
  ASSERT_TRUE(fs.Create("/data").ok());
  GuestIo io(&fs, InterposePolicy::ReadOnly());
  ScopedGuestIo scoped(&io);
  EXPECT_GE(io_open("/data", kOpenRead), 0);
  EXPECT_EQ(io_open("/data", kOpenRead | kOpenWrite),
            -static_cast<int>(ErrorCode::kPermissionDenied));
  EXPECT_EQ(io_open("/new", kOpenWrite | kOpenCreate),
            -static_cast<int>(ErrorCode::kPermissionDenied));
}

TEST(GuestIoPolicyTest, JailConfinesGuest) {
  SimFs fs;
  ASSERT_TRUE(fs.Mkdir("/work").ok());
  ASSERT_TRUE(fs.Create("/secret").ok());
  InterposePolicy policy;
  policy.set_path_jail("/work");
  GuestIo io(&fs, policy);
  ScopedGuestIo scoped(&io);
  EXPECT_GE(io_open("/work/f", kOpenWrite | kOpenCreate), 0);
  EXPECT_EQ(io_open("/secret", kOpenRead), -static_cast<int>(ErrorCode::kPermissionDenied));
  SimFsStat st;
  EXPECT_EQ(io_stat("/secret", &st), -static_cast<int>(ErrorCode::kPermissionDenied));
}

// --- attachment capture/restore (host-side) ---

TEST(GuestIoAttachmentTest, CaptureRestoreRoundTrip) {
  SimFs fs;
  GuestIo io(&fs, InterposePolicy::SoundMinimal());
  ScopedGuestIo scoped(&io);

  int fd = io_open("/f", kOpenRead | kOpenWrite | kOpenCreate);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(io_write(fd, "base", 4), 4);

  auto snap = io.Capture();

  ASSERT_EQ(io_write(fd, "MORE", 4), 4);
  ASSERT_EQ(io_close(fd), 0);
  ASSERT_EQ(io_mkdir("/junk"), 0);

  io.Restore(snap);

  // fd is open again with its captured offset; later writes are gone.
  SimFsStat st;
  ASSERT_EQ(io_fstat(fd, &st), 0);
  EXPECT_EQ(st.size, 4u);
  EXPECT_EQ(io_lseek(fd, 0, SeekWhence::kCur), 4);
  EXPECT_EQ(io_stat("/junk", &st), -static_cast<int>(ErrorCode::kNotFound));
}

// --- end-to-end containment inside a session ---

struct FsGuestArg {
  int solutions = 0;
};

// Each extension appends its digit to the same file; failing paths must leave
// no trace. Accepting paths are those guessing '2': the file must then read
// exactly "2" regardless of what failed paths wrote before.
void FileEffectsGuest(void* arg) {
  auto* a = static_cast<FsGuestArg*>(arg);
  if (sys_guess_strategy(StrategyKind::kDfs)) {
    int fd = io_open("/trace", kOpenRead | kOpenWrite | kOpenCreate | kOpenAppend);
    if (fd < 0) {
      sys_guess_fail();
    }
    int guess = sys_guess(3);
    char digit = static_cast<char>('0' + guess);
    io_write(fd, &digit, 1);
    if (guess != 2) {
      sys_guess_fail();  // the write above must be rolled back
    }
    SimFsStat st;
    io_fstat(fd, &st);
    if (st.size != 1) {
      // A leaked write from a sibling path would show up here.
      io_close(fd);
      sys_guess_fail();
    }
    // Solutions escape containment through the interposed stdout (fd 1), the
    // paper's printboard(); the filesystem itself is rolled back with the scope.
    char contents[2] = {};
    io_pread(fd, contents, 1, 0);
    io_write(1, contents, 1);
    io_close(fd);
    a->solutions++;
  }
}

TEST(InterposeSessionTest, FailedExtensionsLeaveNoFileTrace) {
  SimFs fs;
  GuestIo io(&fs, InterposePolicy::SoundMinimal());
  ScopedGuestIo scoped(&io);

  std::string emitted;
  SessionOptions options;
  options.arena_bytes = 8ull << 20;
  options.output = [&emitted](std::string_view text) { emitted += text; };
  BacktrackSession session(options);
  session.AddAttachment(&io);

  FsGuestArg arg;
  ASSERT_TRUE(session.Run(&FileEffectsGuest, &arg).ok());
  EXPECT_EQ(arg.solutions, 1);

  // Only the accepting path's digit escaped — sibling paths' writes were
  // contained (no "0"/"1" leaked into the shared file before the check above).
  EXPECT_EQ(emitted, "2");

  // When the scope exhausted, the session restored the scope-opening snapshot:
  // the filesystem is back to its pre-search image (§3.1 immutability — the
  // false branch of sys_guess_strategy resumes from the original candidate).
  EXPECT_EQ(fs.Lookup("/trace").status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(fs.live_inodes(), 1u);
}

// Branching over file contents: each of 4 paths writes a distinct value into
// the same file and yields a checkpoint; resuming any checkpoint must see its
// own value (snapshot isolation across the tree).
struct YieldFsArg {
  int dummy = 0;
};

void YieldFsGuest(void* /*arg*/) {
  if (sys_guess_strategy(StrategyKind::kDfs)) {
    int fd = io_open("/state", kOpenRead | kOpenWrite | kOpenCreate | kOpenTrunc);
    if (fd < 0) {
      sys_guess_fail();
    }
    int guess = sys_guess(4);
    char v = static_cast<char>('A' + guess);
    io_pwrite(fd, &v, 1, 0);
    uint64_t mailbox = 0;
    sys_yield(&mailbox, sizeof mailbox);
    // After resume: verify our file survived with our value.
    char back = 0;
    io_pread(fd, &back, 1, 0);
    if (back == v) {
      sys_note_solution();
    }
    io_close(fd);
    sys_guess_fail();
  }
}

TEST(InterposeSessionTest, CheckpointsCarryIsolatedFsState) {
  SimFs fs;
  GuestIo io(&fs, InterposePolicy::SoundMinimal());
  ScopedGuestIo scoped(&io);

  SessionOptions options;
  options.arena_bytes = 8ull << 20;
  BacktrackSession session(options);
  session.AddAttachment(&io);

  YieldFsArg arg;
  ASSERT_TRUE(session.Run(&YieldFsGuest, &arg).ok());
  std::vector<Checkpoint> checkpoints = session.TakeNewCheckpoints();
  ASSERT_EQ(checkpoints.size(), 4u);

  // Resume in reverse order: each must still see its own byte.
  for (auto it = checkpoints.rbegin(); it != checkpoints.rend(); ++it) {
    ASSERT_TRUE(session.Resume(*it, nullptr, 0).ok());
  }
  EXPECT_EQ(session.stats().solutions, 4u);
}

}  // namespace
}  // namespace lw
