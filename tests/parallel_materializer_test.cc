// ParallelMaterializer and the parallel-materialize engine seam:
//   * team mechanics — slot coverage, serial-inline small jobs, one clean
//     Status from a mid-materialize failing publish, team reuse after failure,
//     sigaltstacks installed on the worker-team startup path;
//   * bit-identity — a parallel materialize produces a snapshot structure
//     (page-ref table + StructureBytes) identical to a serial one, for all
//     three engines, over a shared content-addressed store;
//   * end-to-end parity — the 8-queens harness (92 solutions) under a
//     worker-count sweep 1/2/4/8 for every engine, plus the service-level
//     parallel_materialize_workers plumbing.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstring>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/core/backtrack.h"
#include "src/snapshot/parallel_materializer.h"
#include "src/snapshot/soft_dirty.h"
#include "src/solver/service.h"

#if defined(__has_feature)
#if __has_feature(thread_sanitizer) && !defined(__SANITIZE_THREAD__)
#define __SANITIZE_THREAD__ 1
#endif
#endif

namespace lw {
namespace {

// --- Team mechanics --------------------------------------------------------------

TEST(ParallelMaterializerTest, RunsEverySlotExactlyOnce) {
  ParallelMaterializerOptions options;
  options.workers = 4;
  options.chunk_slots = 16;
  ParallelMaterializer pm(options);
  constexpr size_t kSlots = 1000;
  std::vector<std::atomic<uint32_t>> hits(kSlots);
  Status status = pm.Run(kSlots, [&hits](size_t slot) {
    hits[slot].fetch_add(1, std::memory_order_relaxed);
    return OkStatus();
  });
  ASSERT_TRUE(status.ok()) << status.ToString();
  for (size_t slot = 0; slot < kSlots; ++slot) {
    EXPECT_EQ(hits[slot].load(std::memory_order_relaxed), 1u) << "slot " << slot;
  }
}

TEST(ParallelMaterializerTest, SubChunkJobsRunInlineOnCaller) {
  ParallelMaterializerOptions options;
  options.workers = 8;
  options.chunk_slots = 64;
  ParallelMaterializer pm(options);
  const std::thread::id caller = std::this_thread::get_id();
  bool all_on_caller = true;
  Status status = pm.Run(64, [&](size_t) {
    all_on_caller = all_on_caller && std::this_thread::get_id() == caller;
    return OkStatus();
  });
  ASSERT_TRUE(status.ok());
  EXPECT_TRUE(all_on_caller);
}

TEST(ParallelMaterializerTest, ZeroAndSerialWorkersRunInline) {
  for (uint32_t workers : {0u, 1u}) {
    ParallelMaterializerOptions options;
    options.workers = workers;
    ParallelMaterializer pm(options);
    size_t ran = 0;
    Status status = pm.Run(500, [&ran](size_t) {
      ++ran;
      return OkStatus();
    });
    ASSERT_TRUE(status.ok());
    EXPECT_EQ(ran, 500u);
  }
}

TEST(ParallelMaterializerTest, FailingPublishSurfacesOneCleanStatus) {
  ParallelMaterializerOptions options;
  options.workers = 4;
  options.chunk_slots = 8;
  ParallelMaterializer pm(options);
  // Every slot fails with a chunk-identifying message: regardless of how the
  // cancellation race unfolds, chunk 0 is always claimed and attempted, so the
  // aggregated Status must be chunk 0's (the lowest failing chunk attempted).
  Status status = pm.Run(512, [&options](size_t slot) {
    return Internal("publish failed in chunk " +
                    std::to_string(slot / options.chunk_slots));
  });
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kInternal);
  EXPECT_EQ(status.message(), "publish failed in chunk 0");

  // The team survives a failed run: the next job starts clean and completes.
  std::atomic<size_t> ran{0};
  Status ok = pm.Run(512, [&ran](size_t) {
    ran.fetch_add(1, std::memory_order_relaxed);
    return OkStatus();
  });
  ASSERT_TRUE(ok.ok()) << ok.ToString();
  EXPECT_EQ(ran.load(), 512u);
}

TEST(ParallelMaterializerTest, MidMaterializeFailureStopsClaimingNewChunks) {
  ParallelMaterializerOptions options;
  options.workers = 2;
  options.chunk_slots = 4;
  ParallelMaterializer pm(options);
  std::atomic<size_t> ran{0};
  Status status = pm.Run(10000, [&ran](size_t slot) {
    ran.fetch_add(1, std::memory_order_relaxed);
    if (slot == 5) {
      return Internal("boom");
    }
    return OkStatus();
  });
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.message(), "boom");
  // Poisoning is best-effort, but it must not degenerate into running the
  // whole job: in-flight chunks finish, new ones are not claimed.
  EXPECT_LT(ran.load(), 10000u);
}

// Worker-team startup path regression: every thread that runs slot work —
// pooled workers and the caller — must have an alternate signal stack
// installed, because slot functions touch guest pages under the CoW protocol
// and a SIGSEGV frame must never land on a write-protected guest stack. The
// rendezvous in the slot body guarantees at least two distinct threads
// actually participate before anyone is released.
TEST(ParallelMaterializerTest, WorkerTeamInstallsSigaltstacks) {
  ParallelMaterializerOptions options;
  options.workers = 4;
  options.chunk_slots = 8;
  ParallelMaterializer pm(options);

  std::mutex mu;
  std::condition_variable cv;
  std::set<std::thread::id> threads;
  bool all_installed = true;
  Status status = pm.Run(64, [&](size_t) {
    stack_t ss{};
    const bool installed = sigaltstack(nullptr, &ss) == 0 && (ss.ss_flags & SS_DISABLE) == 0 &&
                           ss.ss_sp != nullptr;
    std::unique_lock<std::mutex> lock(mu);
    all_installed = all_installed && installed;
    threads.insert(std::this_thread::get_id());
    cv.notify_all();
    // Hold until a second thread has joined the job (or time out and let the
    // assertion below report the scheduling anomaly instead of hanging).
    cv.wait_for(lock, std::chrono::seconds(10), [&threads] { return threads.size() >= 2; });
    return OkStatus();
  });
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_GE(threads.size(), 2u) << "parallel run never left the calling thread";
  EXPECT_TRUE(all_installed) << "a worker ran slot work without a sigaltstack";
}

// --- Bit-identity vs serial, all three engines -----------------------------------

GuestArena::Layout SmallLayout() {
  GuestArena::Layout layout;
  layout.arena_bytes = 2ull << 20;
  layout.stack_bytes = 256 * 1024;
  layout.guard_bytes = 16 * kPageSize;
  return layout;
}

SnapshotEngine::Env MakeEnv(GuestArena* arena, PageStore* store, SnapshotEngineStats* stats,
                            SnapshotMode mode, uint32_t owner) {
  SnapshotEngine::Env env;
  env.arena = arena;
  env.store = store;
  env.stats = stats;
  env.page_map_kind = PageMapKind::kRadix;
  env.hot_page_limit = mode == SnapshotMode::kCow ? 64 : 0;
  env.owner = owner;
  return env;
}

// Writes one round of page content into an arena: a spread of distinct fills,
// a pair of byte-identical pages (intra-snapshot dedup), and a page whose
// content repeats across rounds (cross-snapshot dedup).
void WriteRound(GuestArena& arena, int round) {
  for (uint32_t page = 1; page <= 80; ++page) {
    std::memset(arena.PageAddr(page), static_cast<int>((page * 7 + round * 13) & 0xFF),
                kPageSize);
  }
  std::memset(arena.PageAddr(90), 0x55, kPageSize);  // identical pair...
  std::memset(arena.PageAddr(91), 0x55, kPageSize);  // ...every round
  std::memset(arena.PageAddr(92), static_cast<int>(round), kPageSize);
}

class ParallelEngineBitIdentityTest : public ::testing::TestWithParam<SnapshotMode> {};

TEST_P(ParallelEngineBitIdentityTest, ParallelSnapshotStructureMatchesSerial) {
#ifdef __SANITIZE_THREAD__
  // kAdaptive may arm the CoW mechanism at any checkpoint, so it carries the
  // same TSan conflict.
  if (GetParam() == SnapshotMode::kCow || GetParam() == SnapshotMode::kAdaptive) {
    GTEST_SKIP() << "CoW SIGSEGV protocol conflicts with TSan signal interposition";
  }
#endif
  if (GetParam() == SnapshotMode::kSoftDirty && !SoftDirtyTracker::Supported()) {
    GTEST_SKIP() << "soft-dirty unavailable: " << SoftDirtyTracker::Probe().ToString();
  }
  // One shared store: equal published bytes yield the same blob, so if the
  // parallel engine assembles the same structure as the serial one, every
  // page-ref pair compares pointer-equal.
  PageStore store;
  GuestArena serial_arena(SmallLayout());
  GuestArena parallel_arena(SmallLayout());
  SnapshotEngineStats serial_stats;
  SnapshotEngineStats parallel_stats;
  {
    auto serial_engine = MakeSnapshotEngine(
        GetParam(), MakeEnv(&serial_arena, &store, &serial_stats, GetParam(), 1));
    auto parallel_engine = MakeSnapshotEngine(
        GetParam(), MakeEnv(&parallel_arena, &store, &parallel_stats, GetParam(), 1));

    ParallelMaterializerOptions pm_options;
    pm_options.workers = 4;
    pm_options.chunk_slots = 8;  // small chunks: even CoW dirty sets fan out
    ParallelMaterializer pm(pm_options);
    MaterializeContext ctx;
    ctx.parallel = &pm;

    // Several rounds so the CoW engine exercises hot-page promotion (pages
    // dirtied every round go hot after round 4) and the scan engines evolve
    // cur_map_ across materializations.
    for (int round = 0; round < 8; ++round) {
      WriteRound(serial_arena, round);
      WriteRound(parallel_arena, round);
      Snapshot serial_snap;
      Snapshot parallel_snap;
      serial_engine->Materialize(serial_snap);
      parallel_engine->Materialize(parallel_snap, ctx);

      for (uint32_t page = 0; page < serial_arena.num_pages(); ++page) {
        ASSERT_TRUE(serial_snap.map.Get(page) == parallel_snap.map.Get(page))
            << "round " << round << " page " << page;
      }
      ASSERT_EQ(serial_engine->StructureBytes(), parallel_engine->StructureBytes())
          << "round " << round;
      ASSERT_EQ(serial_stats.pages_materialized, parallel_stats.pages_materialized)
          << "round " << round;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllEngines, ParallelEngineBitIdentityTest,
                         ::testing::Values(SnapshotMode::kCow, SnapshotMode::kFullCopy,
                                           SnapshotMode::kIncremental, SnapshotMode::kSoftDirty,
                                           SnapshotMode::kAdaptive),
                         [](const ::testing::TestParamInfo<SnapshotMode>& info) {
                           return SnapshotModeName(info.param);
                         });

// --- End-to-end: 8-queens parity under a worker sweep ----------------------------

constexpr int kQueensN = 8;
constexpr uint64_t kQueensSolutions = 92;

void QueensGuest(void* arg) {
  int n = *static_cast<int*>(arg);
  auto* session = static_cast<BacktrackSession*>(CurrentExecutor());
  struct Board {
    int row[16];
    int ld[32];
    int rd[32];
  };
  auto* b = GuestNew<Board>(session->heap());
  std::memset(b, 0, sizeof(Board));
  // Page-aligned trail: one full page of placement-derived bytes per column,
  // so every snapshot has a multi-page dirty set for the team to split.
  auto* raw = static_cast<uint8_t*>(session->heap()->Alloc((16 + 1) * kPageSize));
  auto* trail = reinterpret_cast<uint8_t*>(
      (reinterpret_cast<uintptr_t>(raw) + kPageSize - 1) & ~(kPageSize - 1));
  if (sys_guess_strategy(StrategyKind::kDfs)) {
    for (int c = 0; c < n; ++c) {
      int r = sys_guess(n);
      if (b->row[r] || b->ld[r + c] || b->rd[n + r - c]) {
        sys_guess_fail();
      }
      b->row[r] = 1;
      b->ld[r + c] = 1;
      b->rd[n + r - c] = 1;
      std::memset(trail + static_cast<size_t>(c) * kPageSize, r + 1, kPageSize);
    }
    sys_note_solution();
    sys_guess_fail();
  }
}

class ParallelQueensParityTest : public ::testing::TestWithParam<SnapshotMode> {};

TEST_P(ParallelQueensParityTest, WorkerSweepKeepsParityAndSnapshotCounts) {
#ifdef __SANITIZE_THREAD__
  // kAdaptive arms the CoW mechanism once the dirty rate settles low, so it
  // carries the same TSan conflict.
  if (GetParam() == SnapshotMode::kCow || GetParam() == SnapshotMode::kAdaptive) {
    GTEST_SKIP() << "CoW SIGSEGV protocol conflicts with TSan signal interposition";
  }
#endif
  if (GetParam() == SnapshotMode::kSoftDirty && !SoftDirtyTracker::Supported()) {
    GTEST_SKIP() << "soft-dirty unavailable: " << SoftDirtyTracker::Probe().ToString();
  }
  uint64_t serial_snapshots = 0;
  uint64_t serial_pages = 0;
  uint64_t serial_restored = 0;
  for (uint32_t workers : {1u, 2u, 4u, 8u}) {
    int n = kQueensN;
    SessionOptions options;
    // Small arena/stack keep the full-copy sweep (every page, every snapshot)
    // affordable under TSan.
    options.arena_bytes = 1ull << 20;
    options.guest_stack_bytes = 256 * 1024;
    options.snapshot_mode = GetParam();
    options.parallel_materialize_workers = workers;
    options.output = [](std::string_view) {};
    BacktrackSession session(options);
    ASSERT_TRUE(session.Run(&QueensGuest, &n).ok()) << "workers=" << workers;
    EXPECT_EQ(session.stats().solutions, kQueensSolutions) << "workers=" << workers;
    // The engine's work must be invariant in the worker count, not just the
    // search result: same snapshots, same pages published.
    if (workers == 1) {
      serial_snapshots = session.stats().snapshots;
      serial_pages = session.stats().pages_materialized;
      serial_restored = session.stats().pages_restored;
    } else {
      EXPECT_EQ(session.stats().snapshots, serial_snapshots) << "workers=" << workers;
      EXPECT_EQ(session.stats().pages_materialized, serial_pages) << "workers=" << workers;
      // Restores fan out over the same team; the pages they copy must be
      // invariant in the worker count too (compare-driven skips are
      // content-deterministic).
      EXPECT_EQ(session.stats().pages_restored, serial_restored) << "workers=" << workers;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllEngines, ParallelQueensParityTest,
                         ::testing::Values(SnapshotMode::kCow, SnapshotMode::kFullCopy,
                                           SnapshotMode::kIncremental, SnapshotMode::kSoftDirty,
                                           SnapshotMode::kAdaptive),
                         [](const ::testing::TestParamInfo<SnapshotMode>& info) {
                           return SnapshotModeName(info.param);
                         });

// --- Service plumbing ------------------------------------------------------------

TEST(ParallelServiceTest, SolverServiceThreadsWorkerOptionThrough) {
  SolverServiceOptions options;
  options.tuning.arena_bytes = 8ull << 20;
  options.tuning.snapshot_mode = SnapshotMode::kIncremental;  // fault-free on any thread
  options.tuning.parallel_materialize_workers = 4;
  SolverService service(options);
  Cnf base;
  base.num_vars = 3;
  base.AddDimacsClause({1, 2});
  base.AddDimacsClause({-2, 3});
  auto root = service.SolveRoot(base);
  ASSERT_TRUE(root.ok()) << root.status().ToString();
  EXPECT_EQ(root->result, kTrue);
  EXPECT_GT(service.session_stats().snapshots, 0u);
}

}  // namespace
}  // namespace lw
