// Tests for the simulated MMU substrate: frame pool refcounting, 4-level page
// tables (mapping, walking, A/D bits, 2-D walk accounting), TLB behaviour,
// address-space CoW cloning, and the SimSnapshotEngine snapshot tree — including
// a property test that random snapshot/restore/mutate sequences always reproduce
// exact memory images.

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <vector>

#include "src/simvm/address_space.h"
#include "src/simvm/page_table.h"
#include "src/simvm/phys_mem.h"
#include "src/simvm/sim_engine.h"
#include "src/simvm/tlb.h"
#include "src/util/rng.h"

namespace lwvm {
namespace {

// --- PhysMem -----------------------------------------------------------------

TEST(PhysMemTest, AllocZeroesAndTracksUsage) {
  PhysMem mem(16);
  FrameId f = mem.AllocFrame();
  ASSERT_NE(f, kInvalidFrame);
  for (uint64_t i = 0; i < kPageSize; ++i) {
    ASSERT_EQ(mem.FrameData(f)[i], 0);
  }
  EXPECT_EQ(mem.stats().frames_in_use, 1u);
  EXPECT_EQ(mem.RefCount(f), 1u);
}

TEST(PhysMemTest, RefUnrefLifecycle) {
  PhysMem mem(4);
  FrameId f = mem.AllocFrame();
  mem.Ref(f);
  EXPECT_EQ(mem.RefCount(f), 2u);
  mem.Unref(f);
  EXPECT_EQ(mem.stats().frames_in_use, 1u);
  mem.Unref(f);
  EXPECT_EQ(mem.stats().frames_in_use, 0u);
}

TEST(PhysMemTest, ExhaustionReturnsInvalid) {
  PhysMem mem(2);
  FrameId a = mem.AllocFrame();
  FrameId b = mem.AllocFrame();
  EXPECT_NE(a, kInvalidFrame);
  EXPECT_NE(b, kInvalidFrame);
  EXPECT_EQ(mem.AllocFrame(), kInvalidFrame);
  mem.Unref(a);
  EXPECT_NE(mem.AllocFrame(), kInvalidFrame);  // freed frame is reusable
}

// --- PageTable -----------------------------------------------------------------

class PageTableTest : public ::testing::Test {
 protected:
  PhysMem mem_{4096};
};

TEST_F(PageTableTest, MapWalkRoundTrip) {
  PageTable pt(&mem_);
  FrameId f = mem_.AllocFrame();
  ASSERT_TRUE(pt.Map(0x400000, f, Prot{true, false}).ok());
  mem_.Unref(f);

  WalkResult walk = pt.Walk(0x400123, Access::kRead);
  EXPECT_EQ(walk.fault, FaultKind::kNone);
  EXPECT_EQ(walk.frame, f);
  EXPECT_EQ(walk.paddr, (static_cast<Paddr>(f) << kPageBits) | 0x123u);
  // 4 table levels + 1 data access.
  EXPECT_EQ(walk.mem_refs_1d, 5);
  // Nested: each of the 5 references costs 1 + 4 EPT levels.
  EXPECT_EQ(walk.mem_refs_2d, 25);
}

TEST_F(PageTableTest, UnmappedWalkFaults) {
  PageTable pt(&mem_);
  WalkResult walk = pt.Walk(0x1000, Access::kRead);
  EXPECT_EQ(walk.fault, FaultKind::kNotPresent);
  EXPECT_EQ(walk.mem_refs_1d, 1);  // faulted at the top level
}

TEST_F(PageTableTest, WriteToReadOnlyFaults) {
  PageTable pt(&mem_);
  FrameId f = mem_.AllocFrame();
  ASSERT_TRUE(pt.Map(0x1000, f, Prot{false, false}).ok());
  mem_.Unref(f);
  EXPECT_EQ(pt.Walk(0x1000, Access::kRead).fault, FaultKind::kNone);
  EXPECT_EQ(pt.Walk(0x1000, Access::kWrite).fault, FaultKind::kWriteProtected);
}

TEST_F(PageTableTest, CowBitDistinguishesFaultKind) {
  PageTable pt(&mem_);
  FrameId f = mem_.AllocFrame();
  ASSERT_TRUE(pt.Map(0x2000, f, Prot{false, true}).ok());
  mem_.Unref(f);
  EXPECT_EQ(pt.Walk(0x2000, Access::kWrite).fault, FaultKind::kCow);
}

TEST_F(PageTableTest, AccessedAndDirtyBits) {
  PageTable pt(&mem_);
  FrameId f = mem_.AllocFrame();
  ASSERT_TRUE(pt.Map(0x3000, f, Prot{true, false}).ok());
  mem_.Unref(f);
  EXPECT_EQ(pt.LeafEntry(0x3000) & (kPteAccessed | kPteDirty), 0u);
  pt.Walk(0x3000, Access::kRead);
  EXPECT_NE(pt.LeafEntry(0x3000) & kPteAccessed, 0u);
  EXPECT_EQ(pt.LeafEntry(0x3000) & kPteDirty, 0u);
  pt.Walk(0x3000, Access::kWrite);
  EXPECT_NE(pt.LeafEntry(0x3000) & kPteDirty, 0u);
}

TEST_F(PageTableTest, DoubleMapRejected) {
  PageTable pt(&mem_);
  FrameId f = mem_.AllocFrame();
  ASSERT_TRUE(pt.Map(0x5000, f, Prot{true, false}).ok());
  EXPECT_EQ(pt.Map(0x5000, f, Prot{true, false}).code(), lw::ErrorCode::kAlreadyExists);
  mem_.Unref(f);
}

TEST_F(PageTableTest, UnmapReleasesFrame) {
  PageTable pt(&mem_);
  FrameId f = mem_.AllocFrame();
  ASSERT_TRUE(pt.Map(0x6000, f, Prot{true, false}).ok());
  EXPECT_EQ(mem_.RefCount(f), 2u);
  ASSERT_TRUE(pt.Unmap(0x6000).ok());
  EXPECT_EQ(mem_.RefCount(f), 1u);
  mem_.Unref(f);
  EXPECT_EQ(pt.Unmap(0x6000).code(), lw::ErrorCode::kNotFound);
}

TEST_F(PageTableTest, SparseMappingsAcrossLevels) {
  PageTable pt(&mem_);
  // Addresses chosen to hit different level-3/2/1 indices.
  std::vector<Vaddr> addrs{0x0, 0x200000, 0x40000000, 0x8000000000, 0x7fffffff000};
  std::map<Vaddr, FrameId> frames;
  for (Vaddr va : addrs) {
    FrameId f = mem_.AllocFrame();
    ASSERT_TRUE(pt.Map(va, f, Prot{true, false}).ok()) << va;
    mem_.Unref(f);
    frames[va] = f;
  }
  for (Vaddr va : addrs) {
    WalkResult walk = pt.Walk(va, Access::kWrite);
    EXPECT_EQ(walk.fault, FaultKind::kNone) << va;
    EXPECT_EQ(walk.frame, frames[va]) << va;
  }
  int leaves = 0;
  pt.ForEachLeaf([&leaves](Vaddr, uint64_t) { ++leaves; });
  EXPECT_EQ(leaves, static_cast<int>(addrs.size()));
}

TEST_F(PageTableTest, DestructorReleasesAllFrames) {
  uint64_t before = mem_.stats().frames_in_use;
  {
    PageTable pt(&mem_);
    for (Vaddr va = 0; va < 64 * kPageSize; va += kPageSize) {
      FrameId f = mem_.AllocFrame();
      ASSERT_TRUE(pt.Map(va, f, Prot{true, false}).ok());
      mem_.Unref(f);
    }
  }
  EXPECT_EQ(mem_.stats().frames_in_use, before);
}

TEST_F(PageTableTest, CowCloneSharesFramesAndDowngradesBothSides) {
  PageTable pt(&mem_);
  FrameId f = mem_.AllocFrame();
  ASSERT_TRUE(pt.Map(0x1000, f, Prot{true, false}).ok());
  mem_.Unref(f);

  auto clone_result = pt.CowClone();
  ASSERT_TRUE(clone_result.ok());
  std::unique_ptr<PageTable> clone = std::move(clone_result).value();

  EXPECT_EQ(mem_.RefCount(f), 2u);  // shared data frame
  EXPECT_EQ(pt.Walk(0x1000, Access::kWrite).fault, FaultKind::kCow);
  EXPECT_EQ(clone->Walk(0x1000, Access::kWrite).fault, FaultKind::kCow);
  EXPECT_EQ(pt.Walk(0x1000, Access::kRead).fault, FaultKind::kNone);
}

// --- Tlb -------------------------------------------------------------------------

TEST(TlbTest, MissThenHit) {
  Tlb tlb(4, 2);
  EXPECT_EQ(tlb.Lookup(0x1000, Access::kRead), nullptr);
  tlb.Insert(0x1000, 7, true);
  const Tlb::Entry* e = tlb.Lookup(0x1000, Access::kRead);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->frame, 7u);
  EXPECT_EQ(tlb.stats().hits, 1u);
  EXPECT_EQ(tlb.stats().misses, 1u);
}

TEST(TlbTest, WriteThroughReadOnlyEntryMisses) {
  Tlb tlb(4, 2);
  tlb.Insert(0x1000, 3, /*writable=*/false);
  EXPECT_NE(tlb.Lookup(0x1000, Access::kRead), nullptr);
  EXPECT_EQ(tlb.Lookup(0x1000, Access::kWrite), nullptr);
}

TEST(TlbTest, LruEvictionWithinSet) {
  Tlb tlb(1, 2);  // single set, 2 ways
  tlb.Insert(0x1000, 1, true);
  tlb.Insert(0x2000, 2, true);
  EXPECT_NE(tlb.Lookup(0x1000, Access::kRead), nullptr);  // touch 0x1000 (LRU=0x2000)
  tlb.Insert(0x3000, 3, true);                            // evicts 0x2000
  EXPECT_NE(tlb.Lookup(0x1000, Access::kRead), nullptr);
  EXPECT_EQ(tlb.Lookup(0x2000, Access::kRead), nullptr);
  EXPECT_NE(tlb.Lookup(0x3000, Access::kRead), nullptr);
  EXPECT_EQ(tlb.stats().evictions, 1u);
}

TEST(TlbTest, FlushAllInvalidatesEverything) {
  Tlb tlb(4, 4);
  for (Vaddr va = 0; va < 16 * kPageSize; va += kPageSize) {
    tlb.Insert(va, static_cast<FrameId>(va >> kPageBits), true);
  }
  tlb.FlushAll();
  for (Vaddr va = 0; va < 16 * kPageSize; va += kPageSize) {
    EXPECT_EQ(tlb.Lookup(va, Access::kRead), nullptr);
  }
}

// --- AddressSpace ------------------------------------------------------------------

class AddressSpaceTest : public ::testing::Test {
 protected:
  PhysMem mem_{8192};
};

TEST_F(AddressSpaceTest, ReadWriteRoundTrip) {
  AddressSpace as(&mem_);
  ASSERT_TRUE(as.MapRegion(0x10000, 4, true).ok());
  const char msg[] = "hello simulated mmu";
  ASSERT_TRUE(as.Write(0x10100, msg, sizeof(msg)).ok());
  char out[sizeof(msg)] = {};
  ASSERT_TRUE(as.Read(0x10100, out, sizeof(out)).ok());
  EXPECT_STREQ(out, msg);
}

TEST_F(AddressSpaceTest, CrossPageAccess) {
  AddressSpace as(&mem_);
  ASSERT_TRUE(as.MapRegion(0x20000, 2, true).ok());
  std::vector<uint8_t> data(kPageSize, 0xee);
  ASSERT_TRUE(as.Write(0x20000 + kPageSize - 100, data.data(), 200).ok());
  std::vector<uint8_t> out(200, 0);
  ASSERT_TRUE(as.Read(0x20000 + kPageSize - 100, out.data(), 200).ok());
  for (uint8_t b : out) {
    ASSERT_EQ(b, 0xee);
  }
}

TEST_F(AddressSpaceTest, UnmappedAccessFails) {
  AddressSpace as(&mem_);
  uint8_t byte = 0;
  EXPECT_EQ(as.Read(0x999000, &byte, 1).code(), lw::ErrorCode::kNotFound);
  EXPECT_GT(as.stats().not_present_faults, 0u);
}

TEST_F(AddressSpaceTest, ReadOnlyRegionRejectsWrites) {
  AddressSpace as(&mem_);
  ASSERT_TRUE(as.MapRegion(0x30000, 1, false).ok());
  uint8_t byte = 1;
  EXPECT_EQ(as.Write(0x30000, &byte, 1).code(), lw::ErrorCode::kPermissionDenied);
  ASSERT_TRUE(as.ProtectRegion(0x30000, 1, true).ok());
  EXPECT_TRUE(as.Write(0x30000, &byte, 1).ok());
}

TEST_F(AddressSpaceTest, TlbCachesTranslations) {
  AddressSpace as(&mem_);
  ASSERT_TRUE(as.MapRegion(0x40000, 1, true).ok());
  uint64_t value = 42;
  ASSERT_TRUE(as.Write64(0x40000, value).ok());
  uint64_t walks_after_first = as.stats().walks;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(as.Write64(0x40000, value).ok());
  }
  EXPECT_EQ(as.stats().walks, walks_after_first);  // all TLB hits
  EXPECT_GE(as.tlb().stats().hits, 100u);
}

TEST_F(AddressSpaceTest, CowCloneIsolatesWrites) {
  AddressSpace as(&mem_);
  ASSERT_TRUE(as.MapRegion(0x50000, 8, true).ok());
  ASSERT_TRUE(as.Write64(0x50000, 111).ok());

  auto clone_result = as.CowClone();
  ASSERT_TRUE(clone_result.ok());
  std::unique_ptr<AddressSpace> snap = std::move(clone_result).value();

  // Write through the live space: must not affect the snapshot.
  ASSERT_TRUE(as.Write64(0x50000, 222).ok());
  EXPECT_EQ(*as.Read64(0x50000), 222u);
  EXPECT_EQ(*snap->Read64(0x50000), 111u);
  EXPECT_GE(as.stats().cow_copies, 1u);

  // Untouched pages remain physically shared (one frame, two references).
  uint64_t pte_live = as.page_table().LeafEntry(0x51000);
  uint64_t pte_snap = snap->page_table().LeafEntry(0x51000);
  EXPECT_EQ(pte_live >> kPageBits, pte_snap >> kPageBits);
}

TEST_F(AddressSpaceTest, SoleOwnerCowFaultReclaimsWithoutCopy) {
  AddressSpace as(&mem_);
  ASSERT_TRUE(as.MapRegion(0x60000, 1, true).ok());
  ASSERT_TRUE(as.Write64(0x60000, 5).ok());
  {
    auto clone_result = as.CowClone();
    ASSERT_TRUE(clone_result.ok());
    // Snapshot dropped immediately: live space is sole owner again.
  }
  uint64_t copies_before = as.stats().cow_copies;
  ASSERT_TRUE(as.Write64(0x60000, 6).ok());
  EXPECT_EQ(as.stats().cow_copies, copies_before);  // no copy needed
  EXPECT_GE(as.stats().cow_reclaims, 1u);
}

TEST_F(AddressSpaceTest, NestedWalkCostsFiveXNative) {
  AddressSpace as(&mem_);
  ASSERT_TRUE(as.MapRegion(0x70000, 1, true).ok());
  uint8_t byte = 0;
  ASSERT_TRUE(as.Read(0x70000, &byte, 1).ok());
  // First touch: one full walk. 2-D accounting = 5 × 1-D for 4-level EPT.
  EXPECT_EQ(as.stats().walk_refs_2d, 5 * as.stats().walk_refs_1d);
}

// --- SimSnapshotEngine ------------------------------------------------------------

TEST(SimSnapshotEngineTest, SnapshotRestoreRoundTrip) {
  PhysMem mem(8192);
  SimSnapshotEngine engine(&mem);
  ASSERT_TRUE(engine.space().MapRegion(0, 16, true).ok());
  ASSERT_TRUE(engine.space().Write64(0x100, 1).ok());

  auto snap = engine.Snapshot();
  ASSERT_TRUE(snap.ok());

  ASSERT_TRUE(engine.space().Write64(0x100, 2).ok());
  EXPECT_EQ(*engine.space().Read64(0x100), 2u);

  ASSERT_TRUE(engine.Restore(*snap).ok());
  EXPECT_EQ(*engine.space().Read64(0x100), 1u);

  // The snapshot survives multiple restores.
  ASSERT_TRUE(engine.space().Write64(0x100, 3).ok());
  ASSERT_TRUE(engine.Restore(*snap).ok());
  EXPECT_EQ(*engine.space().Read64(0x100), 1u);
}

TEST(SimSnapshotEngineTest, ReleaseFreesFrames) {
  PhysMem mem(8192);
  uint64_t baseline;
  SimSnapshotEngine engine(&mem);
  ASSERT_TRUE(engine.space().MapRegion(0, 32, true).ok());
  for (uint64_t page = 0; page < 32; ++page) {
    ASSERT_TRUE(engine.space().Write64(page * kPageSize, page).ok());
  }
  baseline = mem.stats().frames_in_use;

  auto snap = engine.Snapshot();
  ASSERT_TRUE(snap.ok());
  // Dirty every page: each write breaks CoW, doubling data frames.
  for (uint64_t page = 0; page < 32; ++page) {
    ASSERT_TRUE(engine.space().Write64(page * kPageSize, page + 100).ok());
  }
  EXPECT_GE(mem.stats().frames_in_use, baseline + 32);
  ASSERT_TRUE(engine.Release(*snap).ok());
  EXPECT_EQ(engine.Release(*snap).code(), lw::ErrorCode::kNotFound);
}

// Property test: a random tree of snapshots with random writes; restoring any
// snapshot must reproduce its exact captured image.
class SimEnginePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SimEnginePropertyTest, RandomSnapshotTreeReproducesImages) {
  lw::Rng rng(GetParam());
  PhysMem mem(65536);
  SimSnapshotEngine engine(&mem);
  const uint64_t kPages = 24;
  ASSERT_TRUE(engine.space().MapRegion(0, kPages, true).ok());

  using Image = std::vector<uint64_t>;  // one word per page (cheap fingerprint)
  auto CaptureImage = [&]() {
    Image image(kPages);
    for (uint64_t page = 0; page < kPages; ++page) {
      image[page] = *engine.space().Read64(page * kPageSize + 8);
    }
    return image;
  };

  std::vector<std::pair<SimSnapshotEngine::SnapId, Image>> snaps;
  for (int op = 0; op < 400; ++op) {
    int action = static_cast<int>(rng.Below(10));
    if (action < 6) {
      uint64_t page = rng.Below(kPages);
      ASSERT_TRUE(engine.space().Write64(page * kPageSize + 8, rng.Next()).ok());
    } else if (action < 8) {
      auto snap = engine.Snapshot();
      ASSERT_TRUE(snap.ok());
      snaps.emplace_back(*snap, CaptureImage());
    } else if (!snaps.empty()) {
      size_t i = static_cast<size_t>(rng.Below(snaps.size()));
      ASSERT_TRUE(engine.Restore(snaps[i].first).ok());
      EXPECT_EQ(CaptureImage(), snaps[i].second);
    }
  }
  // Final sweep: every stored snapshot still restores exactly.
  for (auto& [id, image] : snaps) {
    ASSERT_TRUE(engine.Restore(id).ok());
    EXPECT_EQ(CaptureImage(), image);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimEnginePropertyTest, ::testing::Values(7, 77, 777));

}  // namespace
}  // namespace lwvm
