// The remote checkpoint fabric over a loopback socket: concurrent remote
// tenants must be *bit-identical* to an in-process service driven with the
// same wire bytes (the one-codec-two-transports contract), per-tenant byte
// budgets must reject the over-budget tenant — and only that tenant — with a
// typed error and refund on release, and per-tenant backpressure must bound
// in-flight jobs at the daemon's admission cap.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/net/client.h"
#include "src/service/daemon.h"
#include "src/solver/pool_jobs.h"
#include "src/util/rng.h"

#if defined(__has_feature)
#if __has_feature(thread_sanitizer) && !defined(__SANITIZE_THREAD__)
#define __SANITIZE_THREAD__ 1
#endif
#endif

namespace lw {
namespace {

// Under TSan the fault-free incremental engine keeps the suite signal-free;
// elsewhere exercise the paper's CoW protocol on real worker threads.
SnapshotMode DaemonSnapshotMode() {
#ifdef __SANITIZE_THREAD__
  return SnapshotMode::kIncremental;
#else
  return SnapshotMode::kCow;
#endif
}

Cnf BaseProblem() {
  Rng rng(20260808);
  return RandomKSat(&rng, 120, 500, 3);
}

CheckpointDaemonOptions DaemonOptions(int services) {
  CheckpointDaemonOptions options;
  options.num_services = services;
  options.service.tuning.arena_bytes = 8ull << 20;
  options.service.tuning.snapshot_mode = DaemonSnapshotMode();
  return options;
}

std::string SocketPath(const char* name) {
  return std::string(::testing::TempDir()) + "/lwsnap_" + name + ".sock";
}

std::vector<uint8_t> Encode(const std::vector<std::vector<Lit>>& clauses) {
  std::vector<uint8_t> bytes;
  EXPECT_TRUE(EncodeSolverRequest(clauses, 0, &bytes).ok());
  return bytes;
}

TEST(NetDaemonTest, ConcurrentRemoteTenantsMatchInProcessBitForBit) {
  Cnf base = BaseProblem();
  std::vector<uint8_t> base_bytes = Encode(base.clauses);
  std::vector<std::vector<Lit>> unit = {{MakeLit(0)}};
  std::vector<uint8_t> unit_bytes = Encode(unit);

  // In-process reference, driven EXACTLY the way the daemon drives its
  // services: boot an empty root, then deliver the same encoded bytes.
  SolverServiceOptions ref_options;
  ref_options.tuning.arena_bytes = 8ull << 20;
  ref_options.tuning.snapshot_mode = DaemonSnapshotMode();
  SolverService reference(ref_options);
  Cnf empty;
  auto ref_root = reference.SolveRoot(empty);
  ASSERT_TRUE(ref_root.ok());
  auto ref_base = reference.ExtendEncoded(ref_root->token, base_bytes.data(), base_bytes.size());
  ASSERT_TRUE(ref_base.ok());
  auto ref_ext = reference.ExtendEncoded(ref_base->token, unit_bytes.data(), unit_bytes.size());
  ASSERT_TRUE(ref_ext.ok());

  constexpr int kTenants = 4;
  auto daemon = CheckpointDaemon::StartUnix(SocketPath("parity"), DaemonOptions(kTenants));
  ASSERT_TRUE(daemon.ok());

  struct TenantResult {
    bool ok = false;
    RemoteOutcome root;
    RemoteOutcome ext;
  };
  std::vector<TenantResult> results(kTenants);
  std::vector<std::thread> tenants;
  for (int i = 0; i < kTenants; ++i) {
    tenants.emplace_back([&, i] {
      auto client = RemoteCheckpointClient::ConnectUnix((*daemon)->path());
      if (!client.ok()) return;
      auto session = (*client)->OpenSession();
      if (!session.ok()) return;
      auto root = (*client)->SolveRootEncoded(*session, base_bytes.data(), base_bytes.size());
      if (!root.ok()) return;
      auto ext =
          (*client)->ExtendEncoded(*session, root->token, unit_bytes.data(), unit_bytes.size());
      if (!ext.ok()) return;
      results[static_cast<size_t>(i)] = {true, *std::move(root), *std::move(ext)};
    });
  }
  for (auto& t : tenants) {
    t.join();
  }

  for (const TenantResult& r : results) {
    ASSERT_TRUE(r.ok);
    // Bit-identical outcomes: result, conflict count, variable count, and the
    // packed model bytes all match the in-process run of the same bytes.
    EXPECT_EQ(r.root.result.raw(), ref_base->result.raw());
    EXPECT_EQ(r.root.conflicts, ref_base->conflicts);
    EXPECT_EQ(r.root.num_vars, ref_base->num_vars);
    EXPECT_EQ(r.root.model_bits, ref_base->model_bits);
    EXPECT_EQ(r.ext.result.raw(), ref_ext->result.raw());
    EXPECT_EQ(r.ext.conflicts, ref_ext->conflicts);
    EXPECT_EQ(r.ext.num_vars, ref_ext->num_vars);
    EXPECT_EQ(r.ext.model_bits, ref_ext->model_bits);
    // Model sanity: the remote model satisfies the base problem.
    if (r.root.result == kTrue) {
      std::vector<bool> assignment(r.root.num_vars);
      for (uint32_t v = 0; v < r.root.num_vars; ++v) {
        assignment[v] = RemoteCheckpointClient::ModelBit(r.root, static_cast<Var>(v));
      }
      EXPECT_TRUE(base.IsSatisfiedBy(assignment));
    }
  }
  EXPECT_EQ((*daemon)->stats().connections_accepted, static_cast<uint64_t>(kTenants));
  EXPECT_EQ((*daemon)->stats().connections_dropped, 0u);
}

TEST(NetDaemonTest, TcpLoopbackServesTheSameProtocol) {
  Cnf base = BaseProblem();
  auto daemon = CheckpointDaemon::StartTcp(0, DaemonOptions(1));
  ASSERT_TRUE(daemon.ok());
  ASSERT_NE((*daemon)->port(), 0);
  auto client = RemoteCheckpointClient::ConnectTcp((*daemon)->port());
  ASSERT_TRUE(client.ok());
  auto session = (*client)->OpenSession();
  ASSERT_TRUE(session.ok());
  auto root = (*client)->SolveRoot(*session, base);
  ASSERT_TRUE(root.ok());
  EXPECT_TRUE(root->result == kTrue || root->result == kFalse);
  // Divergent branches of one remote parent: the snapshot-tree shape.
  auto left = (*client)->Extend(*session, root->token, {{MakeLit(1)}});
  auto right = (*client)->Extend(*session, root->token, {{~MakeLit(1)}});
  ASSERT_TRUE(left.ok());
  ASSERT_TRUE(right.ok());
  EXPECT_TRUE((*client)->Release(*session, root->token).ok());
  // Released parents stay extensible through their children.
  auto deeper = (*client)->Extend(*session, left->token, {{MakeLit(2)}});
  ASSERT_TRUE(deeper.ok());
}

TEST(NetDaemonTest, TenantBudgetRejectsOnlyTheOverBudgetTenant) {
  Cnf base = BaseProblem();
  CheckpointDaemonOptions options = DaemonOptions(2);
  auto daemon = CheckpointDaemon::StartUnix(SocketPath("budget"), options);
  ASSERT_TRUE(daemon.ok());

  // Tenant A: one page of budget — the first solve is admitted (optimistic
  // admission against settled charges), every later one must be rejected.
  RemoteClientOptions tight;
  tight.budget_bytes = 4096;
  auto a = RemoteCheckpointClient::ConnectUnix((*daemon)->path(), tight);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ((*a)->granted_budget(), 4096u);
  auto a_session = (*a)->OpenSession();
  ASSERT_TRUE(a_session.ok());
  auto a_root = (*a)->SolveRoot(*a_session, base);
  ASSERT_TRUE(a_root.ok());
  auto rejected = (*a)->Extend(*a_session, a_root->token, {{MakeLit(0)}});
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), ErrorCode::kResourceExhausted);

  auto a_stats = (*a)->TenantStats();
  ASSERT_TRUE(a_stats.ok());
  EXPECT_EQ(a_stats->budget_bytes, 4096u);
  EXPECT_GE(a_stats->charged_bytes, 4096u);  // the root solve's footprint
  EXPECT_EQ(a_stats->budget_rejections, 1u);

  // Tenant B (operator default: unlimited) is unaffected by A's pressure.
  auto b = RemoteCheckpointClient::ConnectUnix((*daemon)->path());
  ASSERT_TRUE(b.ok());
  auto b_session = (*b)->OpenSession();
  ASSERT_TRUE(b_session.ok());
  auto b_root = (*b)->SolveRoot(*b_session, base);
  ASSERT_TRUE(b_root.ok());
  auto b_ext = (*b)->Extend(*b_session, b_root->token, {{MakeLit(0)}});
  ASSERT_TRUE(b_ext.ok());

  // Releasing A's token refunds its charge; admission opens again.
  ASSERT_TRUE((*a)->Release(*a_session, a_root->token).ok());
  a_stats = (*a)->TenantStats();
  ASSERT_TRUE(a_stats.ok());
  EXPECT_EQ(a_stats->charged_bytes, 0u);
  auto again = (*a)->SolveRoot(*a_session, base);
  ASSERT_TRUE(again.ok());
}

TEST(NetDaemonTest, BudgetRequestsAreClampedByTheOperator) {
  CheckpointDaemonOptions options = DaemonOptions(1);
  options.default_budget_bytes = 1ull << 20;
  options.max_budget_bytes = 2ull << 20;
  auto daemon = CheckpointDaemon::StartUnix(SocketPath("clamp"), options);
  ASSERT_TRUE(daemon.ok());

  auto defaulted = RemoteCheckpointClient::ConnectUnix((*daemon)->path());
  ASSERT_TRUE(defaulted.ok());
  EXPECT_EQ((*defaulted)->granted_budget(), 1ull << 20);

  RemoteClientOptions greedy;
  greedy.budget_bytes = 1ull << 40;
  auto clamped = RemoteCheckpointClient::ConnectUnix((*daemon)->path(), greedy);
  ASSERT_TRUE(clamped.ok());
  EXPECT_EQ((*clamped)->granted_budget(), 2ull << 20);
}

TEST(NetDaemonTest, BackpressureBoundsInflightPerTenant) {
  Cnf base = BaseProblem();
  CheckpointDaemonOptions options = DaemonOptions(1);
  options.max_inflight_per_tenant = 2;
  auto daemon = CheckpointDaemon::StartUnix(SocketPath("backpressure"), options);
  ASSERT_TRUE(daemon.ok());

  auto client = RemoteCheckpointClient::ConnectUnix((*daemon)->path());
  ASSERT_TRUE(client.ok());
  EXPECT_EQ((*client)->max_inflight(), 2u);
  auto session = (*client)->OpenSession();
  ASSERT_TRUE(session.ok());

  // Pipeline 6 solves without waiting: the daemon's reader may admit at most
  // 2 at a time; the rest wait in the socket until replies retire.
  std::vector<uint8_t> base_bytes = Encode(base.clauses);
  constexpr int kPipelined = 6;
  std::vector<uint64_t> request_ids;
  for (int i = 0; i < kPipelined; ++i) {
    auto id = (*client)->SendSolveRootEncoded(*session, base_bytes.data(), base_bytes.size());
    ASSERT_TRUE(id.ok());
    request_ids.push_back(*id);
  }
  for (uint64_t id : request_ids) {
    auto outcome = (*client)->WaitOutcome(id);
    ASSERT_TRUE(outcome.ok());
    EXPECT_FALSE(outcome->result == kUndef);
  }

  auto stats = (*client)->TenantStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->jobs_executed, static_cast<uint64_t>(kPipelined));
  EXPECT_GE(stats->max_inflight_observed, 1u);
  EXPECT_LE(stats->max_inflight_observed, 2u);  // the admission bound held
}

TEST(NetDaemonTest, SessionsAreAFiniteRecyclableResource) {
  auto daemon = CheckpointDaemon::StartUnix(SocketPath("sessions"), DaemonOptions(2));
  ASSERT_TRUE(daemon.ok());
  auto client = RemoteCheckpointClient::ConnectUnix((*daemon)->path());
  ASSERT_TRUE(client.ok());

  auto first = (*client)->OpenSession();
  auto second = (*client)->OpenSession();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  auto third = (*client)->OpenSession();
  ASSERT_FALSE(third.ok());
  EXPECT_EQ(third.status().code(), ErrorCode::kResourceExhausted);

  // Close one; the slot recycles — and the recycled session solves from the
  // pristine empty root, not the previous tenant's leftovers.
  Cnf tiny;
  tiny.AddDimacsClause({1, 2});
  auto before_close = (*client)->SolveRoot(*first, tiny);
  ASSERT_TRUE(before_close.ok());
  ASSERT_TRUE((*client)->CloseSession(*first).ok());
  auto reopened = (*client)->OpenSession();
  ASSERT_TRUE(reopened.ok());
  auto after = (*client)->SolveRoot(*reopened, tiny);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->result.raw(), before_close->result.raw());
  EXPECT_EQ(after->num_vars, before_close->num_vars);

  // A closed session's tokens are gone.
  auto stale = (*client)->Extend(*first, before_close->token, {{MakeLit(0)}});
  ASSERT_FALSE(stale.ok());
}

TEST(NetDaemonTest, DisconnectReleasesSessionsForTheNextTenant) {
  auto daemon = CheckpointDaemon::StartUnix(SocketPath("disconnect"), DaemonOptions(1));
  ASSERT_TRUE(daemon.ok());
  Cnf tiny;
  tiny.AddDimacsClause({1});
  {
    auto first = RemoteCheckpointClient::ConnectUnix((*daemon)->path());
    ASSERT_TRUE(first.ok());
    auto session = (*first)->OpenSession();
    ASSERT_TRUE(session.ok());
    ASSERT_TRUE((*first)->SolveRoot(*session, tiny).ok());
    // Drop the client without closing the session: the daemon must reclaim
    // the slot and the tenant's tokens on disconnect.
  }
  // The daemon reclaims asynchronously; a fresh tenant retries until the
  // slot returns (bounded, so a regression fails rather than hangs).
  auto second = RemoteCheckpointClient::ConnectUnix((*daemon)->path());
  ASSERT_TRUE(second.ok());
  Result<uint32_t> session = Status(ErrorCode::kInternal);
  for (int attempt = 0; attempt < 200 && !session.ok(); ++attempt) {
    session = (*second)->OpenSession();
    if (!session.ok()) {
      ASSERT_EQ(session.status().code(), ErrorCode::kResourceExhausted);
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE((*second)->SolveRoot(*session, tiny).ok());
}

}  // namespace
}  // namespace lw
