// lwprolog tests: lexer, parser, unification, arithmetic, control (cut,
// negation-as-failure, between), user predicates (lists, recursion), and the
// n-queens program used as the paper's §5 comparison workload.

#include <gtest/gtest.h>

#include <algorithm>

#include <string>
#include <vector>

#include "src/prolog/lexer.h"
#include "src/prolog/machine.h"
#include "src/prolog/parser.h"
#include "src/prolog/term.h"

namespace lw {
namespace {

// --- lexer ---

std::vector<Token> LexAll(std::string_view text) {
  Lexer lexer(text);
  std::vector<Token> tokens;
  while (true) {
    auto token = lexer.Next();
    EXPECT_TRUE(token.ok()) << token.status().ToString();
    if (!token.ok() || token->kind == TokKind::kEnd) {
      break;
    }
    tokens.push_back(*token);
  }
  return tokens;
}

TEST(PrologLexerTest, BasicTokens) {
  auto tokens = LexAll("foo(X, 42) :- bar, X =< 7.");
  ASSERT_EQ(tokens.size(), 13u);
  EXPECT_EQ(tokens[0].kind, TokKind::kAtom);
  EXPECT_EQ(tokens[0].text, "foo");
  EXPECT_EQ(tokens[1].kind, TokKind::kLParen);
  EXPECT_EQ(tokens[2].kind, TokKind::kVar);
  EXPECT_EQ(tokens[2].text, "X");
  EXPECT_EQ(tokens[4].kind, TokKind::kInt);
  EXPECT_EQ(tokens[4].int_value, 42);
  EXPECT_EQ(tokens[6].kind, TokKind::kAtom);
  EXPECT_EQ(tokens[6].text, ":-");
  EXPECT_EQ(tokens[10].text, "=<");
  EXPECT_EQ(tokens.back().kind, TokKind::kDot);
}

TEST(PrologLexerTest, CommentsSkipped) {
  auto tokens = LexAll("a. % line comment\n/* block\ncomment */ b.");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].text, "a");
  EXPECT_EQ(tokens[2].text, "b");
}

TEST(PrologLexerTest, QuotedAtomsAndErrors) {
  auto tokens = LexAll("'hello world'.");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].text, "hello world");

  Lexer bad("'unterminated");
  EXPECT_FALSE(bad.Next().ok());
}

TEST(PrologLexerTest, NegationAndCut) {
  auto tokens = LexAll("\\+ foo, !.");
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[0].text, "\\+");
  EXPECT_EQ(tokens[3].text, "!");
}

// --- parser / terms ---

TEST(PrologParserTest, ParsesFactsAndRules) {
  AtomTable atoms;
  TermHeap heap;
  PrologParser parser(&atoms, &heap);
  auto clauses = parser.ParseProgram("parent(tom, bob). grandparent(X, Z) :- parent(X, Y), parent(Y, Z).");
  ASSERT_TRUE(clauses.ok());
  ASSERT_EQ(clauses->size(), 2u);
  EXPECT_TRUE((*clauses)[0].body.empty());
  EXPECT_EQ((*clauses)[1].body.size(), 2u);
  EXPECT_EQ(heap.ToString(atoms, (*clauses)[0].head), "parent(tom,bob)");
}

TEST(PrologParserTest, OperatorPrecedence) {
  AtomTable atoms;
  TermHeap heap;
  PrologParser parser(&atoms, &heap);
  auto query = parser.ParseQuery("X is 1 + 2 * 3 - 4.");
  ASSERT_TRUE(query.ok());
  ASSERT_EQ(query->goals.size(), 1u);
  // 1 + 2*3 - 4 parses as -(+(1, *(2,3)), 4).
  EXPECT_EQ(heap.ToString(atoms, query->goals[0]), "is(_G" + std::to_string(query->vars[0].second) + ",-(+(1,*(2,3)),4))");
}

TEST(PrologParserTest, ListsDesugarToCons) {
  AtomTable atoms;
  TermHeap heap;
  PrologParser parser(&atoms, &heap);
  auto query = parser.ParseQuery("p([1, 2 | T]).");
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(heap.ToString(atoms, query->goals[0]),
            "p([1,2|_G" + std::to_string(query->vars[0].second) + "])");
}

TEST(PrologParserTest, UnderscoreIsAlwaysFresh) {
  AtomTable atoms;
  TermHeap heap;
  PrologParser parser(&atoms, &heap);
  auto query = parser.ParseQuery("p(_, _).");
  ASSERT_TRUE(query.ok());
  EXPECT_TRUE(query->vars.empty());  // _ is not reported
}

TEST(PrologParserTest, Errors) {
  AtomTable atoms;
  TermHeap heap;
  PrologParser parser(&atoms, &heap);
  EXPECT_FALSE(parser.ParseProgram("foo(.").ok());
  EXPECT_FALSE(parser.ParseProgram("foo").ok());        // missing dot
  EXPECT_FALSE(parser.ParseProgram("3.").ok());         // integer head
}

// --- machine: unification and basic control ---

TEST(PrologMachineTest, FactsAndConjunction) {
  PrologMachine m;
  ASSERT_TRUE(m.Consult("parent(tom, bob). parent(bob, ann). "
                        "grandparent(X, Z) :- parent(X, Y), parent(Y, Z).")
                  .ok());
  std::vector<std::string> answers;
  auto count = m.Query("grandparent(tom, Who).",
                       [&answers](const PrologMachine::Bindings& b) {
                         answers.push_back(b[0].second);
                         return true;
                       });
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 1u);
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(answers[0], "ann");
}

TEST(PrologMachineTest, MultipleSolutionsInOrder) {
  PrologMachine m;
  ASSERT_TRUE(m.Consult("color(red). color(green). color(blue).").ok());
  std::vector<std::string> answers;
  auto count = m.Query("color(C).", [&answers](const PrologMachine::Bindings& b) {
    answers.push_back(b[0].second);
    return true;
  });
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 3u);
  EXPECT_EQ(answers, (std::vector<std::string>{"red", "green", "blue"}));
}

TEST(PrologMachineTest, CallbackCanStopEarly) {
  PrologMachine m;
  ASSERT_TRUE(m.Consult("n(1). n(2). n(3).").ok());
  int seen = 0;
  auto count = m.Query("n(X).", [&seen](const PrologMachine::Bindings&) {
    ++seen;
    return seen < 2;
  });
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(seen, 2);
}

TEST(PrologMachineTest, UnificationBuiltins) {
  PrologMachine m;
  ASSERT_TRUE(m.Consult("dummy.").ok());
  EXPECT_EQ(*m.Query("X = f(Y), Y = 3, X = f(3)."), 1u);
  EXPECT_EQ(*m.Query("f(X) = g(X)."), 0u);
  EXPECT_EQ(*m.Query("f(X) \\= g(X)."), 1u);
  EXPECT_EQ(*m.Query("X = 3, X == 3."), 1u);
  EXPECT_EQ(*m.Query("X == Y."), 0u);      // distinct free vars are not identical
  EXPECT_EQ(*m.Query("X \\== Y."), 1u);
  EXPECT_EQ(*m.Query("X == X."), 1u);
}

TEST(PrologMachineTest, ArithmeticIsAndComparisons) {
  PrologMachine m;
  ASSERT_TRUE(m.Consult("dummy.").ok());
  std::string result;
  ASSERT_TRUE(m.Query("X is 2 + 3 * 4, X > 10, X =< 14, X =:= 14, X =\\= 15.",
                      [&result](const PrologMachine::Bindings& b) {
                        result = b[0].second;
                        return true;
                      })
                  .ok());
  EXPECT_EQ(result, "14");
  EXPECT_EQ(*m.Query("X is 7 // 2, X =:= 3."), 1u);
  EXPECT_EQ(*m.Query("X is 7 mod 2, X =:= 1."), 1u);
  EXPECT_EQ(*m.Query("X is -3 mod 5, X =:= 2."), 1u);  // ISO mod sign
  EXPECT_EQ(*m.Query("X is abs(-9), X =:= 9."), 1u);
  EXPECT_EQ(*m.Query("X is min(3, 5), Y is max(3, 5), X =:= 3, Y =:= 5."), 1u);
}

TEST(PrologMachineTest, ArithmeticErrors) {
  PrologMachine m;
  ASSERT_TRUE(m.Consult("dummy.").ok());
  EXPECT_FALSE(m.Query("X is 1 // 0.").ok());
  EXPECT_FALSE(m.Query("X is Y + 1.").ok());       // insufficiently instantiated
  EXPECT_FALSE(m.Query("X is foo + 1.").ok());     // non-evaluable
}

TEST(PrologMachineTest, UnknownPredicateIsError) {
  PrologMachine m;
  ASSERT_TRUE(m.Consult("dummy.").ok());
  auto r = m.Query("no_such_pred(1).");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kNotFound);
}

TEST(PrologMachineTest, CutPrunesAlternatives) {
  PrologMachine m;
  ASSERT_TRUE(m.Consult("first(X) :- member_(X, [1,2,3]), !. "
                        "member_(X, [X|_]). "
                        "member_(X, [_|T]) :- member_(X, T).")
                  .ok());
  std::vector<std::string> answers;
  auto count = m.Query("first(X).", [&answers](const PrologMachine::Bindings& b) {
    answers.push_back(b[0].second);
    return true;
  });
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 1u);  // cut keeps only the first member_ solution
  EXPECT_EQ(answers[0], "1");
}

TEST(PrologMachineTest, CutIsLocalToClause) {
  PrologMachine m;
  // p/1 has two clauses; the cut in q/0 must not prune p's second clause.
  ASSERT_TRUE(m.Consult("q :- !. p(1) :- q. p(2).").ok());
  EXPECT_EQ(*m.Query("p(X)."), 2u);
}

TEST(PrologMachineTest, NegationAsFailure) {
  PrologMachine m;
  ASSERT_TRUE(m.Consult("likes(mary, wine). likes(john, beer).").ok());
  EXPECT_EQ(*m.Query("\\+ likes(mary, beer)."), 1u);
  EXPECT_EQ(*m.Query("\\+ likes(mary, wine)."), 0u);
  // Bindings made inside \+ must not leak.
  EXPECT_EQ(*m.Query("\\+ likes(X, vodka), X = ok."), 1u);
}

TEST(PrologMachineTest, Between) {
  PrologMachine m;
  ASSERT_TRUE(m.Consult("dummy.").ok());
  std::vector<std::string> answers;
  ASSERT_TRUE(m.Query("between(2, 5, X).",
                      [&answers](const PrologMachine::Bindings& b) {
                        answers.push_back(b[0].second);
                        return true;
                      })
                  .ok());
  EXPECT_EQ(answers, (std::vector<std::string>{"2", "3", "4", "5"}));
  EXPECT_EQ(*m.Query("between(1, 3, 2)."), 1u);
  EXPECT_EQ(*m.Query("between(1, 3, 7)."), 0u);
  EXPECT_EQ(*m.Query("between(5, 1, X)."), 0u);  // empty range
}

TEST(PrologMachineTest, TypeTests) {
  PrologMachine m;
  ASSERT_TRUE(m.Consult("dummy.").ok());
  EXPECT_EQ(*m.Query("var(X)."), 1u);
  EXPECT_EQ(*m.Query("X = 3, nonvar(X)."), 1u);
  EXPECT_EQ(*m.Query("integer(42)."), 1u);
  EXPECT_EQ(*m.Query("atom(foo)."), 1u);
  EXPECT_EQ(*m.Query("atom(42)."), 0u);
}

TEST(PrologMachineTest, WriteGoesToSink) {
  PrologMachine m;
  std::string out;
  m.set_output([&out](std::string_view text) { out += text; });
  ASSERT_TRUE(m.Consult("greet :- write(hello), nl, writeln(world).").ok());
  EXPECT_EQ(*m.Query("greet."), 1u);
  EXPECT_EQ(out, "hello\nworld\n");
}

TEST(PrologMachineTest, ListsAndRecursion) {
  PrologMachine m;
  ASSERT_TRUE(m.Consult(
      "append_([], Ys, Ys). "
      "append_([X|Xs], Ys, [X|Zs]) :- append_(Xs, Ys, Zs). "
      "len([], 0). "
      "len([_|T], N) :- len(T, M), N is M + 1.")
                  .ok());
  std::string joined;
  ASSERT_TRUE(m.Query("append_([1,2], [3,4], Z).",
                      [&joined](const PrologMachine::Bindings& b) {
                        joined = b[0].second;
                        return true;
                      })
                  .ok());
  EXPECT_EQ(joined, "[1,2,3,4]");
  EXPECT_EQ(*m.Query("len([a,b,c,d], 4)."), 1u);
  // append as a generator: all ways to split a 3-list.
  EXPECT_EQ(*m.Query("append_(A, B, [1,2,3])."), 4u);
}

TEST(PrologMachineTest, LengthBothDirections) {
  PrologMachine m;
  ASSERT_TRUE(m.Consult("dummy.").ok());
  EXPECT_EQ(*m.Query("length([a,b,c], 3)."), 1u);
  EXPECT_EQ(*m.Query("length([], 0)."), 1u);
  EXPECT_EQ(*m.Query("length([a,b], 3)."), 0u);
  std::string generated;
  ASSERT_TRUE(m.Query("length(L, 3).",
                      [&generated](const PrologMachine::Bindings& b) {
                        generated = b[0].second;
                        return true;
                      })
                  .ok());
  // Three fresh variables.
  EXPECT_EQ(std::count(generated.begin(), generated.end(), ','), 2);
  EXPECT_EQ(generated.front(), '[');
}

TEST(PrologMachineTest, FindallCollectsAllSolutions) {
  PrologMachine m;
  ASSERT_TRUE(m.Consult("n(1). n(2). n(3).").ok());
  std::string result;
  ASSERT_TRUE(m.Query("findall(X, n(X), L).",
                      [&result](const PrologMachine::Bindings& b) {
                        for (const auto& [name, value] : b) {
                          if (name == "L") {
                            result = value;
                          }
                        }
                        return true;
                      })
                  .ok());
  EXPECT_EQ(result, "[1,2,3]");
}

TEST(PrologMachineTest, FindallWithTemplateStructure) {
  PrologMachine m;
  ASSERT_TRUE(m.Consult("p(1, a). p(2, b).").ok());
  std::string result;
  ASSERT_TRUE(m.Query("findall(pair(Y, X), p(X, Y), L).",
                      [&result](const PrologMachine::Bindings& b) {
                        for (const auto& [name, value] : b) {
                          if (name == "L") {
                            result = value;
                          }
                        }
                        return true;
                      })
                  .ok());
  EXPECT_EQ(result, "[pair(a,1),pair(b,2)]");
}

TEST(PrologMachineTest, FindallEmptyGoalGivesNil) {
  PrologMachine m;
  ASSERT_TRUE(m.Consult("n(1).").ok());
  EXPECT_EQ(*m.Query("findall(X, fail, [])."), 1u);
  EXPECT_EQ(*m.Query("findall(X, fail, [oops])."), 0u);
}

TEST(PrologMachineTest, FindallDoesNotLeakBindings) {
  PrologMachine m;
  ASSERT_TRUE(m.Consult("n(1). n(2).").ok());
  // X inside findall stays unbound outside it.
  EXPECT_EQ(*m.Query("findall(X, n(X), L), var(X)."), 1u);
  // Solutions inside findall do not count as query solutions.
  EXPECT_EQ(*m.Query("findall(X, n(X), L)."), 1u);
}

TEST(PrologMachineTest, FirstArgumentIndexingSkipsClauses) {
  PrologMachine m;
  ASSERT_TRUE(m.Consult("kind(apple, fruit). kind(carrot, vegetable). kind(pear, fruit). "
                        "kind(leek, vegetable). kind(plum, fruit).")
                  .ok());
  // A bound first argument must skip the four non-matching heads outright.
  EXPECT_EQ(*m.Query("kind(carrot, K), K = vegetable."), 1u);
  EXPECT_GT(m.stats().index_skips, 0u);
  // An unbound first argument must still enumerate everything.
  uint64_t skips_before = m.stats().index_skips;
  EXPECT_EQ(*m.Query("kind(X, fruit)."), 3u);
  EXPECT_EQ(m.stats().index_skips, skips_before);
}

TEST(PrologMachineTest, IndexingDistinguishesKeyKinds) {
  PrologMachine m;
  ASSERT_TRUE(m.Consult("t(1, int). t(a, atom). t(f(_), struct). t(X, var).").ok());
  // Each bound call matches its own clause plus the var-headed catch-all.
  EXPECT_EQ(*m.Query("t(1, W)."), 2u);     // int + var clauses
  EXPECT_EQ(*m.Query("t(a, W)."), 2u);     // atom + var clauses
  EXPECT_EQ(*m.Query("t(f(9), W)."), 2u);  // struct + var clauses
  EXPECT_EQ(*m.Query("t(g(9), W)."), 1u);  // var clause only
  EXPECT_EQ(*m.Query("t(Z, W)."), 4u);     // unbound: all clauses
}

TEST(PrologMachineTest, InferenceBudget) {
  PrologOptions options;
  options.max_inferences = 100;
  PrologMachine m(options);
  ASSERT_TRUE(m.Consult("loop :- loop.").ok());
  auto r = m.Query("loop.");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kExhausted);
}

// --- the paper's workload: n-queens ---

constexpr char kQueensProgram[] = R"(
range(N, N, [N]) :- !.
range(M, N, [M|T]) :- M < N, M1 is M + 1, range(M1, N, T).

select_(X, [X|T], T).
select_(X, [H|T], [H|R]) :- select_(X, T, R).

attack(X, Xs) :- attack_(X, 1, Xs).
attack_(X, N, [Y|_]) :- X =:= Y + N.
attack_(X, N, [Y|_]) :- X =:= Y - N.
attack_(X, N, [_|Ys]) :- N1 is N + 1, attack_(X, N1, Ys).

queens_(Unplaced, Placed, Qs) :-
  select_(Q, Unplaced, Rest),
  \+ attack(Q, Placed),
  queens_(Rest, [Q|Placed], Qs).
queens_([], Qs, Qs).

queens(N, Qs) :- range(1, N, Ns), queens_(Ns, [], Qs).
)";

class QueensTest : public ::testing::TestWithParam<std::pair<int, uint64_t>> {};

TEST_P(QueensTest, CountsAllSolutions) {
  auto [n, expected] = GetParam();
  PrologMachine m;
  ASSERT_TRUE(m.Consult(kQueensProgram).ok());
  auto count = m.Query("queens(" + std::to_string(n) + ", Qs).");
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_EQ(*count, expected);
  EXPECT_GT(m.stats().backtracks, 0u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, QueensTest,
                         ::testing::Values(std::make_pair(4, 2ull), std::make_pair(5, 10ull),
                                           std::make_pair(6, 4ull), std::make_pair(7, 40ull),
                                           std::make_pair(8, 92ull)));

TEST(QueensTest, FindallCountsQueensSolutions) {
  PrologMachine m;
  ASSERT_TRUE(m.Consult(kQueensProgram).ok());
  std::string result;
  ASSERT_TRUE(m.Query("findall(Qs, queens(5, Qs), All), length(All, N).",
                      [&result](const PrologMachine::Bindings& b) {
                        for (const auto& [name, value] : b) {
                          if (name == "N") {
                            result = value;
                          }
                        }
                        return true;
                      })
                  .ok());
  EXPECT_EQ(result, "10");
}

TEST(QueensTest, SolutionsAreValidBoards) {
  PrologMachine m;
  ASSERT_TRUE(m.Consult(kQueensProgram).ok());
  std::vector<std::string> boards;
  ASSERT_TRUE(m.Query("queens(6, Qs).",
                      [&boards](const PrologMachine::Bindings& b) {
                        boards.push_back(b[0].second);
                        return true;
                      })
                  .ok());
  ASSERT_EQ(boards.size(), 4u);
  // Spot-check one known 6-queens solution is present.
  bool found = false;
  for (const std::string& board : boards) {
    if (board == "[5,3,1,6,4,2]" || board == "[2,4,6,1,3,5]") {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace lw
