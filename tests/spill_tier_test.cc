// Spill tier (the budget ladder's fourth rung):
//   * SpillTier unit coverage — append/read/free round trips, content-addressed
//     dedup on disk, segment rollover and compaction, option validation;
//   * crash model — a truncated or corrupt leftover segment makes Open fail
//     with a clean IoError (file left as evidence, no UB); a valid stale
//     segment is reclaimed silently;
//   * rung ordering — ByteBudgetPolicy meets a budget reachable by compression
//     alone without touching disk, and only reaches for the spill rung when
//     compression is exhausted;
//   * round-trip parity — spilled blobs fault back bit-identical through every
//     guarded accessor, dedup identity (same bytes → same blob pointer) holds
//     across the RAM/disk boundary, and a store with spill disabled keeps all
//     spill counters at exactly zero;
//   * concurrency — reader fault-backs, publishes, ReleaseBatch storms, and a
//     spiller thread hammering one shared store stay coherent (tsan-safe);
//   * E15 acceptance — a parked checkpoint population whose logical bytes are
//     ≥ 10× the RAM budget stays resident under the budget and restores
//     bit-identically to a never-spilled run, across all five engines and
//     parallel-materialize worker counts {1, 4}.

#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/core/backtrack.h"
#include "src/core/guest_api.h"
#include "src/snapshot/budget_policy.h"
#include "src/snapshot/soft_dirty.h"
#include "src/snapshot/spill_tier.h"

#if defined(__has_feature)
#if __has_feature(thread_sanitizer) && !defined(__SANITIZE_THREAD__)
#define __SANITIZE_THREAD__ 1
#endif
#endif

namespace lw {
namespace {

bool SkipForMode(SnapshotMode mode, const char** reason) {
#ifdef __SANITIZE_THREAD__
  // kAdaptive may arm the CoW mechanism, so it carries the same TSan conflict.
  if (mode == SnapshotMode::kCow || mode == SnapshotMode::kAdaptive) {
    *reason = "CoW SIGSEGV protocol conflicts with TSan signal interposition";
    return true;
  }
#endif
  if (mode == SnapshotMode::kSoftDirty && !SoftDirtyTracker::Supported()) {
    *reason = "soft-dirty unavailable on this kernel";
    return true;
  }
  (void)reason;
  return false;
}

// Scoped spill directory under /tmp; recursively removed on destruction so
// ctest leaves nothing behind even when a test fails mid-way.
class ScopedSpillDir {
 public:
  ScopedSpillDir() {
    char tmpl[] = "/tmp/lwsnap_spill_XXXXXX";
    char* dir = mkdtemp(tmpl);
    LW_CHECK_MSG(dir != nullptr, "mkdtemp failed for spill test dir");
    path_ = dir;
  }
  ~ScopedSpillDir() {
    // The tier unlinks its own segments; sweep whatever a failing test left.
    std::string cmd = "rm -rf '" + path_ + "'";
    int rc = std::system(cmd.c_str());
    (void)rc;
  }
  const std::string& path() const { return path_; }
  std::string Sub(const char* name) const { return path_ + "/" + name; }

 private:
  std::string path_;
};

// Deterministic distinct page content (compressible: the byte pattern is
// periodic). Same scheme as release_batch_test.cc.
void FillPage(uint8_t* buf, uint32_t salt, uint32_t i) {
  for (size_t b = 0; b < kPageSize; ++b) {
    buf[b] = static_cast<uint8_t>((salt * 131 + b * 13) | 1);
  }
  std::memcpy(buf, &salt, sizeof(salt));
  std::memcpy(buf + sizeof(salt), &i, sizeof(i));
}

uint64_t XorShift(uint64_t* state) {
  uint64_t x = *state;
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  *state = x;
  return x;
}

// Deterministic *incompressible* page content: an xorshift64 stream seeded by
// (salt, i). No codec in the tree gets a win on this, so these pages spill at
// their full raw size.
void FillNoisePage(uint8_t* buf, uint64_t salt, uint64_t i) {
  uint64_t state = (salt * 0x9e3779b97f4a7c15ull + i * 2654435761ull) | 1ull;
  for (size_t off = 0; off < kPageSize; off += sizeof(uint64_t)) {
    uint64_t word = XorShift(&state);
    std::memcpy(buf + off, &word, sizeof(word));
  }
}

uint64_t Fnv1a(const uint8_t* data, size_t len) {
  uint64_t h = 1469598103934665603ull;
  for (size_t i = 0; i < len; ++i) {
    h = (h ^ data[i]) * 1099511628211ull;
  }
  return h;
}

// --- SpillTier unit coverage ------------------------------------------------------

TEST(SpillTierTest, OpenRejectsBadOptions) {
  ScopedSpillDir tmp;
  SpillTierOptions options;
  options.dir = "";
  EXPECT_FALSE(SpillTier::Open(options).ok());

  options.dir = tmp.Sub("t");
  options.segment_bytes = SpillTier::kMinSegmentBytes - 1;
  EXPECT_FALSE(SpillTier::Open(options).ok());

  options.segment_bytes = SpillTier::kMinSegmentBytes;
  options.compact_dead_ratio = 0.0;
  EXPECT_FALSE(SpillTier::Open(options).ok());
  options.compact_dead_ratio = 1.5;
  EXPECT_FALSE(SpillTier::Open(options).ok());

  options.compact_dead_ratio = 0.5;
  EXPECT_TRUE(SpillTier::Open(options).ok());
}

TEST(SpillTierTest, AppendReadFreeRoundTripAndDedup) {
  ScopedSpillDir tmp;
  SpillTierOptions options;
  options.dir = tmp.Sub("tier");
  options.segment_bytes = SpillTier::kMinSegmentBytes;
  auto tier_or = SpillTier::Open(options);
  ASSERT_TRUE(tier_or.ok()) << tier_or.status().ToString();
  std::unique_ptr<SpillTier> tier = std::move(*tier_or);

  uint8_t a[kPageSize], b[kPageSize], out[kPageSize];
  FillNoisePage(a, 1, 1);
  FillNoisePage(b, 1, 2);

  SpillRecord* ra = tier->Append(0, a, kPageSize, 0);
  SpillRecord* rb = tier->Append(0, b, kPageSize, 0);
  ASSERT_NE(ra, nullptr);
  ASSERT_NE(rb, nullptr);
  EXPECT_NE(ra, rb);

  // Byte-identical payloads collapse to one record with a bumped refcount.
  SpillRecord* ra2 = tier->Append(0, a, kPageSize, 0);
  EXPECT_EQ(ra2, ra);

  SpillTier::Stats stats = tier->stats();
  EXPECT_EQ(stats.live_records, 2u);
  EXPECT_EQ(stats.appends, 3u);
  EXPECT_EQ(stats.shared_hits, 1u);
  EXPECT_EQ(stats.live_payload_bytes, 2 * kPageSize);

  tier->Read(ra, out);
  EXPECT_EQ(std::memcmp(out, a, kPageSize), 0);
  tier->Read(rb, out);
  EXPECT_EQ(std::memcmp(out, b, kPageSize), 0);

  tier->Free(ra);  // one of two references: record survives
  tier->Read(ra, out);
  EXPECT_EQ(std::memcmp(out, a, kPageSize), 0);
  tier->Free(ra);
  tier->Free(rb);
  stats = tier->stats();
  EXPECT_EQ(stats.live_records, 0u);
  EXPECT_EQ(stats.live_payload_bytes, 0u);
}

TEST(SpillTierTest, SegmentRolloverAndCompactionKeepRecordsReadable) {
  ScopedSpillDir tmp;
  SpillTierOptions options;
  options.dir = tmp.Sub("tier");
  options.segment_bytes = SpillTier::kMinSegmentBytes;  // ~15 pages per segment
  auto tier_or = SpillTier::Open(options);
  ASSERT_TRUE(tier_or.ok()) << tier_or.status().ToString();
  std::unique_ptr<SpillTier> tier = std::move(*tier_or);

  constexpr int kCount = 45;  // spans three segments
  std::vector<SpillRecord*> recs(kCount);
  uint8_t buf[kPageSize];
  for (int i = 0; i < kCount; ++i) {
    FillNoisePage(buf, 7, static_cast<uint64_t>(i));
    recs[i] = tier->Append(0, buf, kPageSize, 0);
    ASSERT_NE(recs[i], nullptr);
  }
  SpillTier::Stats stats = tier->stats();
  EXPECT_GE(stats.segments, 3u);
  EXPECT_EQ(stats.live_records, static_cast<uint64_t>(kCount));

  // Kill most of the first segment's records: its garbage fraction crosses
  // compact_dead_ratio, so survivors get rewritten to the tail and the file
  // goes away. Every surviving record must stay readable through the move.
  for (int i = 0; i < 12; ++i) {
    tier->Free(recs[i]);
    recs[i] = nullptr;
  }
  stats = tier->stats();
  EXPECT_GE(stats.segments_compacted + stats.records_rewritten, 1u)
      << "expected the mostly-dead sealed segment to be reclaimed";
  EXPECT_EQ(stats.live_records, static_cast<uint64_t>(kCount - 12));

  uint8_t expect[kPageSize];
  for (int i = 12; i < kCount; ++i) {
    FillNoisePage(expect, 7, static_cast<uint64_t>(i));
    tier->Read(recs[i], buf);
    EXPECT_EQ(std::memcmp(buf, expect, kPageSize), 0) << "record " << i;
    tier->Free(recs[i]);
  }
  stats = tier->stats();
  EXPECT_EQ(stats.live_records, 0u);
}

TEST(SpillTierTest, TruncatedSegmentFailsOpenCleanly) {
  ScopedSpillDir tmp;
  std::string dir = tmp.Sub("tier");
  ASSERT_EQ(mkdir(dir.c_str(), 0755), 0);
  std::string seg = dir + "/seg-000000.lwspill";

  // A header that claims a full segment over a file that is only one page:
  // torn mid-write. Open must refuse with IoError and leave the file intact.
  {
    std::FILE* f = std::fopen(seg.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    uint32_t magic = SpillTier::kSegmentMagic;
    uint32_t version = SpillTier::kFormatVersion;
    uint64_t segment_bytes = SpillTier::kMinSegmentBytes;
    std::fwrite(&magic, sizeof(magic), 1, f);
    std::fwrite(&version, sizeof(version), 1, f);
    std::fwrite(&segment_bytes, sizeof(segment_bytes), 1, f);
    std::vector<uint8_t> pad(kPageSize - SpillTier::kSegmentHeaderBytes, 0);
    std::fwrite(pad.data(), 1, pad.size(), f);
    std::fclose(f);
  }
  SpillTierOptions options;
  options.dir = dir;
  auto tier_or = SpillTier::Open(options);
  ASSERT_FALSE(tier_or.ok());
  EXPECT_EQ(tier_or.status().code(), ErrorCode::kIoError);
  struct stat st;
  EXPECT_EQ(stat(seg.c_str(), &st), 0) << "torn segment must be left as evidence";

  // A full-size file with a corrupt record header (nonzero garbage where a
  // record magic should be) is equally refused.
  {
    std::FILE* f = std::fopen(seg.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    uint32_t magic = SpillTier::kSegmentMagic;
    uint32_t version = SpillTier::kFormatVersion;
    uint64_t segment_bytes = SpillTier::kMinSegmentBytes;
    std::fwrite(&magic, sizeof(magic), 1, f);
    std::fwrite(&version, sizeof(version), 1, f);
    std::fwrite(&segment_bytes, sizeof(segment_bytes), 1, f);
    std::vector<uint8_t> rest(SpillTier::kMinSegmentBytes - SpillTier::kSegmentHeaderBytes, 0);
    rest[0] = 0xde;  // not a record magic, not the zero end-marker
    std::fwrite(rest.data(), 1, rest.size(), f);
    std::fclose(f);
  }
  tier_or = SpillTier::Open(options);
  ASSERT_FALSE(tier_or.ok());
  EXPECT_EQ(tier_or.status().code(), ErrorCode::kIoError);
}

TEST(SpillTierTest, ValidStaleSegmentIsReclaimedOnOpen) {
  ScopedSpillDir tmp;
  std::string dir = tmp.Sub("tier");
  ASSERT_EQ(mkdir(dir.c_str(), 0755), 0);
  std::string seg = dir + "/seg-000000.lwspill";
  {
    // A well-formed empty segment left by a crashed previous instance.
    std::FILE* f = std::fopen(seg.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    uint32_t magic = SpillTier::kSegmentMagic;
    uint32_t version = SpillTier::kFormatVersion;
    uint64_t segment_bytes = SpillTier::kMinSegmentBytes;
    std::fwrite(&magic, sizeof(magic), 1, f);
    std::fwrite(&version, sizeof(version), 1, f);
    std::fwrite(&segment_bytes, sizeof(segment_bytes), 1, f);
    std::vector<uint8_t> rest(SpillTier::kMinSegmentBytes - SpillTier::kSegmentHeaderBytes, 0);
    std::fwrite(rest.data(), 1, rest.size(), f);
    std::fclose(f);
  }
  SpillTierOptions options;
  options.dir = dir;
  auto tier_or = SpillTier::Open(options);
  ASSERT_TRUE(tier_or.ok()) << tier_or.status().ToString();
  struct stat st;
  EXPECT_NE(stat(seg.c_str(), &st), 0) << "stale segment should be deleted by Open";
}

// --- Store integration ------------------------------------------------------------

TEST(SpillStoreTest, DisabledStoreKeepsSpillCountersAtZero) {
  PageStore store;  // no spill_dir
  EXPECT_FALSE(store.spill_enabled());
  EXPECT_TRUE(store.spill_status().ok());

  uint8_t buf[kPageSize];
  std::vector<PageRef> refs;
  for (uint32_t i = 0; i < 32; ++i) {
    FillNoisePage(buf, 3, i);
    refs.push_back(store.Publish(buf));
  }
  store.CompressAllCold();
  EXPECT_FALSE(store.SpillOneCold());
  EXPECT_EQ(store.SpillAllCold(), 0u);
  store.ReleaseBatch(refs);

  const PageStore::Stats stats = store.stats();
  EXPECT_EQ(stats.spilled_blobs, 0u);
  EXPECT_EQ(stats.spill_bytes, 0u);
  EXPECT_EQ(stats.spills, 0u);
  EXPECT_EQ(stats.faultbacks, 0u);
  EXPECT_EQ(stats.spill_segments, 0u);
  EXPECT_EQ(stats.spill_segments_compacted, 0u);
}

TEST(SpillStoreTest, SpillRoundTripIsBitIdenticalAndKeepsDedupIdentity) {
  ScopedSpillDir tmp;
  PageStoreOptions options;
  options.spill_dir = tmp.Sub("store");
  options.spill_segment_bytes = SpillTier::kMinSegmentBytes;
  PageStore store(options);
  ASSERT_TRUE(store.spill_enabled()) << store.spill_status().ToString();

  // Half compressible (spill at codec size), half incompressible (spill raw).
  constexpr uint32_t kCount = 64;
  uint8_t buf[kPageSize];
  std::vector<PageRef> refs;
  for (uint32_t i = 0; i < kCount; ++i) {
    if (i % 2 == 0) {
      FillPage(buf, 5, i);
    } else {
      FillNoisePage(buf, 5, i);
    }
    refs.push_back(store.Publish(buf));
  }

  store.CompressAllCold();
  uint64_t spilled = store.SpillAllCold();
  EXPECT_EQ(spilled, kCount);
  PageStore::Stats stats = store.stats();
  EXPECT_EQ(stats.spilled_blobs, kCount);
  EXPECT_GT(stats.spill_bytes, 0u);
  EXPECT_GT(stats.spill_segments, 0u);
  EXPECT_LT(stats.bytes_live(), stats.bytes_logical());

  // Every guarded accessor faults back bit-identical content.
  uint8_t expect[kPageSize], out[kPageSize];
  for (uint32_t i = 0; i < kCount; ++i) {
    if (i % 2 == 0) {
      FillPage(expect, 5, i);
    } else {
      FillNoisePage(expect, 5, i);
    }
    EXPECT_TRUE(refs[i].spilled());
    if (i % 4 < 2) {
      refs[i].CopyTo(out);
      EXPECT_EQ(std::memcmp(out, expect, kPageSize), 0) << "page " << i;
    } else {
      EXPECT_TRUE(refs[i].EqualsPage(expect)) << "page " << i;
    }
    EXPECT_FALSE(refs[i].spilled());
  }
  stats = store.stats();
  EXPECT_EQ(stats.faultbacks, kCount);
  EXPECT_EQ(stats.spilled_blobs, 0u);
  EXPECT_EQ(stats.spill_bytes, 0u);

  // Re-spill is free I/O-wise: records were retained across fault-back, so no
  // new segments appear.
  uint64_t segments_before = stats.spill_segments;
  store.CompressAllCold();
  EXPECT_EQ(store.SpillAllCold(), kCount);
  stats = store.stats();
  EXPECT_EQ(stats.spilled_blobs, kCount);
  EXPECT_EQ(stats.spill_segments, segments_before);

  // Dedup identity crosses the RAM/disk boundary: publishing bytes whose blob
  // is currently on disk collapses to the *same* blob (faulted back to prove
  // the match).
  FillNoisePage(buf, 5, 1);
  PageRef again = store.Publish(buf);
  EXPECT_EQ(again, refs[1]);
  EXPECT_FALSE(again.spilled());

  again.Reset();
  store.ReleaseBatch(refs);
  stats = store.stats();
  EXPECT_EQ(stats.spilled_blobs, 0u);
  EXPECT_EQ(stats.spill_bytes, 0u);
}

TEST(SpillStoreTest, BudgetLadderSpillsOnlyAfterCompressionIsExhausted) {
  ScopedSpillDir tmp;
  PageStoreOptions options;
  options.spill_dir = tmp.Sub("store");
  PageStore store(options);
  ASSERT_TRUE(store.spill_enabled()) << store.spill_status().ToString();

  // All pages compressible: the codec shrinks them far below 4 KiB each.
  constexpr uint32_t kCount = 64;
  uint8_t buf[kPageSize];
  std::vector<PageRef> refs;
  for (uint32_t i = 0; i < kCount; ++i) {
    FillPage(buf, 9, i);
    refs.push_back(store.Publish(buf));
  }
  const uint64_t raw_live = store.stats().bytes_live();

  ByteBudgetPolicy policy;
  auto no_evict = []() { return false; };

  // A budget compression alone can meet: the spill rung must not run.
  policy.Enforce(store, raw_live / 2, no_evict);
  PageStore::Stats stats = store.stats();
  EXPECT_LE(stats.bytes_live(), raw_live / 2);
  EXPECT_GT(stats.compressions, 0u);
  EXPECT_EQ(stats.spills, 0u) << "spill rung ran while compression could still pay";

  // A budget below what compression can reach: now the ladder reaches disk.
  policy.Enforce(store, raw_live / 64, no_evict);
  stats = store.stats();
  EXPECT_GT(stats.spills, 0u);
  EXPECT_GT(stats.spilled_blobs, 0u);
  EXPECT_LT(stats.bytes_live(), raw_live / 2);

  store.ReleaseBatch(refs);
}

// Four threads against one spill-enabled store: readers fault blobs back while
// a spiller pushes them out again and a churner publishes and batch-releases
// fresh content. No session, no CoW — tsan-safe by construction.
TEST(SpillStoreTest, ConcurrentFaultbackPublishReleaseStorm) {
  ScopedSpillDir tmp;
  PageStoreOptions options;
  options.spill_dir = tmp.Sub("store");
  options.spill_segment_bytes = SpillTier::kMinSegmentBytes;
  auto store = std::make_shared<PageStore>(options);
  ASSERT_TRUE(store->spill_enabled()) << store->spill_status().ToString();

  constexpr uint32_t kShared = 96;
  constexpr int kRounds = 3;
  std::vector<PageRef> shared;
  {
    uint8_t buf[kPageSize];
    for (uint32_t i = 0; i < kShared; ++i) {
      FillNoisePage(buf, 11, i);
      shared.push_back(store->Publish(buf));
    }
  }
  store->CompressAllCold();
  store->SpillAllCold();

  auto reader = [&store, &shared](uint64_t salt_check) {
    uint8_t expect[kPageSize];
    for (int round = 0; round < kRounds; ++round) {
      for (uint32_t i = 0; i < kShared; ++i) {
        FillNoisePage(expect, salt_check, i);
        PageRef local = shared[i];  // refcount bump, lock-free
        EXPECT_TRUE(local.EqualsPage(expect)) << "page " << i;
      }
    }
  };
  auto churner = [&store]() {
    uint8_t buf[kPageSize];
    for (int round = 0; round < kRounds; ++round) {
      std::vector<PageRef> mine;
      for (uint32_t i = 0; i < 48; ++i) {
        FillNoisePage(buf, 100 + static_cast<uint64_t>(round), i);
        mine.push_back(store->Publish(buf));
      }
      store->CompressAllCold();
      store->SpillAllCold();
      store->ReleaseBatch(mine);  // dying spilled blobs must not fault back
    }
  };
  auto spiller = [&store]() {
    for (int i = 0; i < 400; ++i) {
      store->CompressOneCold();
      store->SpillOneCold();
      if (i % 97 == 0) {
        store->SpillAllCold();
      }
    }
  };

  std::thread t1(reader, 11);
  std::thread t2(reader, 11);
  std::thread t3(churner);
  std::thread t4(spiller);
  t1.join();
  t2.join();
  t3.join();
  t4.join();

  uint8_t expect[kPageSize];
  for (uint32_t i = 0; i < kShared; ++i) {
    FillNoisePage(expect, 11, i);
    EXPECT_TRUE(shared[i].EqualsPage(expect)) << "page " << i;
  }
  store->ReleaseBatch(shared);
  const PageStore::Stats stats = store->stats();
  EXPECT_EQ(stats.spilled_blobs, 0u);
  EXPECT_EQ(stats.spill_bytes, 0u);
  EXPECT_GT(stats.faultbacks, 0u);
}

// --- E15: over-budget parked population, bit-identical restore --------------------

constexpr int kE15Branches = 12;
constexpr int kE15Pages = 32;

struct E15Config {
  int branches = 0;
  int pages = 0;
};

struct E15Mail {
  uint64_t branch = 0;
  uint64_t checksum = 0;
  uint64_t ok = 0;  // 0 = parked, 1 = restored bit-identical, 2 = corrupt
};

// Fills the branch's trail pages with the xorshift stream for (branch, page).
void E15Fill(uint8_t* buf, int pages, uint64_t branch) {
  for (int p = 0; p < pages; ++p) {
    FillNoisePage(buf + static_cast<size_t>(p) * kPageSize, branch + 1000, p);
  }
}

// Word-by-word comparison against the regenerated stream — no second buffer,
// so the guest arena stays small.
bool E15Matches(const uint8_t* buf, int pages, uint64_t branch) {
  uint8_t expect[kPageSize];
  for (int p = 0; p < pages; ++p) {
    FillNoisePage(expect, branch + 1000, p);
    if (std::memcmp(buf + static_cast<size_t>(p) * kPageSize, expect, kPageSize) != 0) {
      return false;
    }
  }
  return true;
}

// Each guessed branch writes kE15Pages of unique incompressible trail, parks a
// checkpoint, and fails to the next branch. When the host later resumes a
// parked branch (request length > 0), the guest re-verifies its restored trail
// against the regenerated stream and parks the verdict.
void E15Guest(void* arg) {
  const E15Config cfg = *static_cast<const E15Config*>(arg);
  auto* session = static_cast<BacktrackSession*>(CurrentExecutor());
  auto* mail = GuestNew<E15Mail>(session->heap());
  auto* raw = static_cast<uint8_t*>(
      session->heap()->Alloc(static_cast<size_t>(cfg.pages + 1) * kPageSize));
  auto* trail = reinterpret_cast<uint8_t*>(
      (reinterpret_cast<uintptr_t>(raw) + kPageSize - 1) & ~(kPageSize - 1));
  if (sys_guess_strategy(StrategyKind::kDfs)) {
    uint64_t g = static_cast<uint64_t>(sys_guess(cfg.branches));
    E15Fill(trail, cfg.pages, g);
    mail->branch = g;
    mail->checksum = Fnv1a(trail, static_cast<size_t>(cfg.pages) * kPageSize);
    mail->ok = 0;
    sys_note_solution();
    size_t len = sys_yield(mail, sizeof(E15Mail));  // park this branch
    while (len > 0) {
      // Host verification request: the snapshot was restored (possibly from
      // disk) — prove the trail is bit-identical to what was parked. The
      // request bytes landed in the mailbox, so rebuild every field from the
      // restored stack variable g.
      mail->branch = g;
      mail->checksum = Fnv1a(trail, static_cast<size_t>(cfg.pages) * kPageSize);
      mail->ok = E15Matches(trail, cfg.pages, g) ? 1 : 2;
      len = sys_yield(mail, sizeof(E15Mail));  // park the verdict
    }
    sys_guess_fail();
  }
}

struct E15Run {
  uint64_t live_after_park = 0;
  uint64_t logical_after_park = 0;
  uint64_t spilled_blobs = 0;
  uint64_t faultbacks = 0;
  std::map<uint64_t, uint64_t> parked;    // branch -> checksum at park time
  std::map<uint64_t, uint64_t> restored;  // branch -> checksum after restore
};

void RunE15(SnapshotMode mode, uint32_t workers, const std::string& spill_dir, uint64_t budget,
            E15Run* out) {
  PageStoreOptions store_options;
  store_options.spill_dir = spill_dir;
  store_options.spill_segment_bytes = SpillTier::kMinSegmentBytes * 4;
  auto store = std::make_shared<PageStore>(store_options);
  if (!spill_dir.empty()) {
    ASSERT_TRUE(store->spill_enabled()) << store->spill_status().ToString();
  }

  SessionOptions options;
  options.arena_bytes = 8ull << 20;
  options.guest_stack_bytes = 256 << 10;
  options.snapshot_mode = mode;
  options.parallel_materialize_workers = workers;
  options.snapshot_byte_budget = budget;
  options.store = store;
  options.output = [](std::string_view) {};

  E15Config cfg{kE15Branches, kE15Pages};
  BacktrackSession session(options);
  Status status = session.Run(&E15Guest, &cfg);
  ASSERT_TRUE(status.ok()) << status.ToString();
  std::vector<Checkpoint> parked = session.TakeNewCheckpoints();
  ASSERT_EQ(parked.size(), static_cast<size_t>(kE15Branches));

  if (budget != 0) {
    // The DFS driver's final unwind faults a handful of shared pages back in
    // *after* the last park's enforcement. A long-running service parks and
    // idles at this point, and its host's ladder runs once more; mirror that
    // before measuring steady-state residency.
    ByteBudgetPolicy().Enforce(*store, budget, []() { return false; });
  }
  PageStore::Stats stats = store->stats();
  out->live_after_park = stats.bytes_live();
  out->logical_after_park = stats.bytes_logical();
  out->spilled_blobs = stats.spilled_blobs;

  for (Checkpoint& cp : parked) {
    E15Mail mail;
    Status read = session.ReadCheckpointMailbox(cp, &mail, sizeof(mail));
    ASSERT_TRUE(read.ok()) << read.ToString();
    EXPECT_EQ(mail.ok, 0u);
    out->parked[mail.branch] = mail.checksum;
  }

  // Resume every parked branch (spilled pages fault back during restore) and
  // collect the guest's own bit-identity verdict.
  for (Checkpoint& cp : parked) {
    uint8_t req = 1;
    Status resumed = session.Resume(cp, &req, sizeof(req));
    ASSERT_TRUE(resumed.ok()) << resumed.ToString();
    std::vector<Checkpoint> fresh = session.TakeNewCheckpoints();
    ASSERT_EQ(fresh.size(), 1u);
    E15Mail verdict;
    Status read = session.ReadCheckpointMailbox(fresh[0], &verdict, sizeof(verdict));
    ASSERT_TRUE(read.ok()) << read.ToString();
    EXPECT_EQ(verdict.ok, 1u) << "restored trail diverged for branch " << verdict.branch;
    out->restored[verdict.branch] = verdict.checksum;
    Status released = session.ReleaseCheckpoint(fresh[0]);
    ASSERT_TRUE(released.ok()) << released.ToString();
  }
  for (Checkpoint& cp : parked) {
    Status released = session.ReleaseCheckpoint(cp);
    ASSERT_TRUE(released.ok()) << released.ToString();
  }
  out->faultbacks = store->stats().faultbacks;
}

class SpillSessionTest : public ::testing::TestWithParam<SnapshotMode> {};

TEST_P(SpillSessionTest, OverBudgetParkedPopulationRestoresBitIdentical) {
  const SnapshotMode mode = GetParam();
  const char* reason = nullptr;
  if (SkipForMode(mode, &reason)) {
    GTEST_SKIP() << reason;
  }
  for (uint32_t workers : {1u, 4u}) {
    SCOPED_TRACE(::testing::Message() << "workers=" << workers);
    ScopedSpillDir tmp;

    // Calibrate: the never-spilled run measures what the population logically
    // holds; the spilled run then gets a RAM budget an order of magnitude
    // smaller than that.
    E15Run base;
    RunE15(mode, workers, "", 0, &base);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
    ASSERT_EQ(base.parked.size(), static_cast<size_t>(kE15Branches));
    EXPECT_EQ(base.spilled_blobs, 0u);
    EXPECT_EQ(base.faultbacks, 0u);
    // /12 keeps the budget above the store's irreducible floor (spilled-blob
    // headers stay resident) while the logical population is still ≥ 10×.
    const uint64_t budget = base.live_after_park / 12;
    ASSERT_GT(budget, 0u);

    E15Run spilled;
    RunE15(mode, workers, tmp.Sub("run"), budget, &spilled);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }

    // The ladder kept residency under the budget while the parked population
    // logically holds ≥ 10× the budget — the spill tier's whole point.
    EXPECT_LE(spilled.live_after_park, budget);
    EXPECT_GE(spilled.logical_after_park, 10 * budget);
    EXPECT_GT(spilled.spilled_blobs, 0u);
    EXPECT_GT(spilled.faultbacks, 0u);

    // Bit-identity: park-time checksums match the never-spilled run, and every
    // restore-from-disk reproduced them exactly.
    EXPECT_EQ(spilled.parked, base.parked);
    EXPECT_EQ(spilled.restored, spilled.parked);
    EXPECT_EQ(base.restored, base.parked);
  }
}

INSTANTIATE_TEST_SUITE_P(AllEngines, SpillSessionTest,
                         ::testing::Values(SnapshotMode::kCow, SnapshotMode::kFullCopy,
                                           SnapshotMode::kIncremental, SnapshotMode::kSoftDirty,
                                           SnapshotMode::kAdaptive),
                         [](const ::testing::TestParamInfo<SnapshotMode>& info) {
                           return SnapshotModeName(info.param);
                         });

}  // namespace
}  // namespace lw
