// Kernel-assisted dirty tracking: the SoftDirtyTracker capability probe and
// arbiter, the SoftDirtyEngine's zero-fault/zero-scan contract, the adaptive
// engine's mechanism selection and graceful fallback, and the lazy
// signal-state invariant (handler + sigaltstack installed only when an engine
// actually needs the SIGSEGV protocol).
//
// Ordering matters for the signal-state tests: they observe the *process*
// SIGSEGV disposition, which CoW installation changes irreversibly. They are
// declared (and therefore run) first, before any test constructs a CoW-mode
// engine in this binary. Kernel-specific tests self-skip with the probe's
// reason on hosts without soft-dirty support.

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <cstring>
#include <sys/mman.h>
#include <thread>
#include <vector>

#include "src/core/arena.h"
#include "src/core/backtrack.h"
#include "src/snapshot/adaptive_engine.h"
#include "src/snapshot/engine.h"
#include "src/snapshot/soft_dirty.h"
#include "src/snapshot/soft_dirty_engine.h"

#if defined(__has_feature)
#if __has_feature(thread_sanitizer) && !defined(__SANITIZE_THREAD__)
#define __SANITIZE_THREAD__ 1
#endif
#endif

namespace lw {
namespace {

GuestArena::Layout SmallLayout() {
  GuestArena::Layout layout;
  layout.arena_bytes = 2ull << 20;
  layout.stack_bytes = 256 * 1024;
  layout.guard_bytes = 16 * kPageSize;
  return layout;
}

SnapshotEngine::Env MakeEnv(GuestArena* arena, PageStore* store, SnapshotEngineStats* stats) {
  SnapshotEngine::Env env;
  env.arena = arena;
  env.store = store;
  env.stats = stats;
  env.page_map_kind = PageMapKind::kRadix;
  return env;
}

// --- Lazy signal state (must run before any CoW engine exists) -------------------

// A whole fault-free session end to end — arena, engine, guest, snapshots,
// restores — must leave the process SIGSEGV disposition at default and never
// install a sigaltstack on its driving thread. "Skipped, not just unused."
TEST(ASignalStateTest, FaultFreeSessionLeavesSignalStateUntouched) {
#ifdef __SANITIZE_THREAD__
  GTEST_SKIP() << "TSan interposes signal dispositions";
#endif
  bool thread_has_altstack = true;
  uint64_t solutions = 0;
  std::thread driver([&thread_has_altstack, &solutions] {
    int n = 6;
    SessionOptions options;
    options.arena_bytes = 1ull << 20;
    options.guest_stack_bytes = 256 * 1024;
    options.snapshot_mode = SnapshotMode::kIncremental;
    options.output = [](std::string_view) {};
    BacktrackSession session(options);
    auto guest = [](void* arg) {
      int queens = *static_cast<int*>(arg);
      struct Board {
        int row[16];
        int ld[32];
        int rd[32];
      };
      auto* session = static_cast<BacktrackSession*>(CurrentExecutor());
      auto* b = GuestNew<Board>(session->heap());
      std::memset(b, 0, sizeof(Board));
      if (sys_guess_strategy(StrategyKind::kDfs)) {
        for (int c = 0; c < queens; ++c) {
          int r = sys_guess(queens);
          if (b->row[r] || b->ld[r + c] || b->rd[queens + r - c]) {
            sys_guess_fail();
          }
          b->row[r] = 1;
          b->ld[r + c] = 1;
          b->rd[queens + r - c] = 1;
        }
        sys_note_solution();
        sys_guess_fail();
      }
    };
    ASSERT_TRUE(session.Run(guest, &n).ok());
    solutions = session.stats().solutions;
    stack_t ss{};
    thread_has_altstack = !(sigaltstack(nullptr, &ss) == 0 && (ss.ss_flags & SS_DISABLE) != 0);
  });
  driver.join();
  EXPECT_EQ(solutions, 4u);  // 6-queens
  EXPECT_FALSE(thread_has_altstack) << "fault-free session installed a sigaltstack";

  struct sigaction sa{};
  ASSERT_EQ(sigaction(SIGSEGV, nullptr, &sa), 0);
  EXPECT_EQ(sa.sa_flags & SA_SIGINFO, 0) << "fault-free session installed a SIGSEGV handler";
  EXPECT_TRUE(sa.sa_handler == SIG_DFL) << "SIGSEGV disposition changed";
}

TEST(ASignalStateTest, CowEngineInstallsHandlerLazily) {
#ifdef __SANITIZE_THREAD__
  GTEST_SKIP() << "TSan interposes signal dispositions";
#endif
  GuestArena arena(SmallLayout());
  PageStore store;
  SnapshotEngineStats stats;
  auto env = MakeEnv(&arena, &store, &stats);
  env.hot_page_limit = 8;
  auto engine = MakeSnapshotEngine(SnapshotMode::kCow, env);
  EXPECT_TRUE(engine->NeedsSignalProtocol());

  struct sigaction sa{};
  ASSERT_EQ(sigaction(SIGSEGV, nullptr, &sa), 0);
  EXPECT_NE(sa.sa_flags & SA_SIGINFO, 0) << "CoW engine did not install the SIGSEGV handler";

  // And the protocol actually works after lazy installation.
  Snapshot snap;
  std::memset(arena.PageAddr(3), 0xCC, kPageSize);
  EXPECT_GE(arena.cow_faults(), 1u);
  engine->Materialize(snap);
  std::memset(arena.PageAddr(3), 0xDD, kPageSize);
  engine->Restore(snap);
  EXPECT_EQ(arena.PageAddr(3)[0], 0xCC);
}

// --- Capability probe ------------------------------------------------------------

TEST(SoftDirtyProbeTest, ProbeIsConsistentAndLogsReason) {
  Status status = SoftDirtyTracker::Probe();
  EXPECT_EQ(status.ok(), SoftDirtyTracker::Supported());
  if (status.ok()) {
    std::fprintf(stderr, "[soft-dirty] supported on this host\n");
  } else {
    std::fprintf(stderr, "[soft-dirty] unavailable: %s\n", status.ToString().c_str());
    EXPECT_FALSE(status.message().empty());
  }
  // Cached: a second probe gives the identical answer.
  EXPECT_EQ(SoftDirtyTracker::Probe().ok(), status.ok());
}

// --- Tracker semantics (kernel-specific; skip without support) -------------------

class SoftDirtyTrackerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!SoftDirtyTracker::Supported()) {
      GTEST_SKIP() << "soft-dirty unavailable: " << SoftDirtyTracker::Probe().ToString();
    }
  }
};

struct MappedPages {
  explicit MappedPages(uint32_t pages) : num_pages(pages) {
    mem = static_cast<uint8_t*>(mmap(nullptr, static_cast<size_t>(pages) * kPageSize,
                                     PROT_READ | PROT_WRITE, MAP_PRIVATE | MAP_ANONYMOUS, -1, 0));
    EXPECT_NE(mem, MAP_FAILED);
  }
  ~MappedPages() { munmap(mem, static_cast<size_t>(num_pages) * kPageSize); }
  uint8_t* page(uint32_t p) { return mem + static_cast<size_t>(p) * kPageSize; }
  uint8_t* mem;
  uint32_t num_pages;
};

TEST_F(SoftDirtyTrackerTest, HarvestReportsExactWriteSet) {
  MappedPages region(32);
  SoftDirtyTracker tracker(region.mem, region.num_pages);
  ASSERT_TRUE(tracker.DiscardAndClear().ok());

  region.page(1)[0] = 1;
  region.page(5)[100] = 2;
  region.page(30)[kPageSize - 1] = 3;
  std::vector<uint32_t> pages;
  ASSERT_TRUE(tracker.HarvestAndClear(pages).ok());
  EXPECT_EQ(pages, (std::vector<uint32_t>{1, 5, 30}));

  // The clear started a fresh interval: nothing pending now.
  ASSERT_TRUE(tracker.HarvestAndClear(pages).ok());
  EXPECT_TRUE(pages.empty());
  EXPECT_GT(tracker.pagemap_entries_read(), 0u);
  EXPECT_GE(tracker.clear_refs_writes(), 3u);
}

TEST_F(SoftDirtyTrackerTest, HarvestWithoutClearKeepsPagesPending) {
  MappedPages region(8);
  SoftDirtyTracker tracker(region.mem, region.num_pages);
  ASSERT_TRUE(tracker.DiscardAndClear().ok());

  region.page(4)[0] = 1;
  std::vector<uint32_t> pages;
  ASSERT_TRUE(tracker.Harvest(pages).ok());
  EXPECT_EQ(pages, (std::vector<uint32_t>{4}));
  ASSERT_TRUE(tracker.Harvest(pages).ok());
  EXPECT_EQ(pages, (std::vector<uint32_t>{4}));  // still pending
  ASSERT_TRUE(tracker.HarvestAndClear(pages).ok());
  EXPECT_EQ(pages, (std::vector<uint32_t>{4}));  // consumed now
  ASSERT_TRUE(tracker.Harvest(pages).ok());
  EXPECT_TRUE(pages.empty());
}

// The heart of the arbiter: clear_refs is process-wide, so one tracker's
// clear must not lose another tracker's pending writes.
TEST_F(SoftDirtyTrackerTest, PendingWritesSurviveAnotherTrackersClear) {
  MappedPages region_a(16);
  MappedPages region_b(16);
  SoftDirtyTracker a(region_a.mem, region_a.num_pages);
  SoftDirtyTracker b(region_b.mem, region_b.num_pages);
  ASSERT_TRUE(a.DiscardAndClear().ok());

  region_a.page(2)[0] = 1;  // pending in A
  std::vector<uint32_t> pages;
  ASSERT_TRUE(b.HarvestAndClear(pages).ok());  // B clears the whole process
  EXPECT_TRUE(pages.empty());
  region_a.page(3)[0] = 1;  // written after B's clear
  ASSERT_TRUE(a.HarvestAndClear(pages).ok());
  EXPECT_EQ(pages, (std::vector<uint32_t>{2, 3}))
      << "a page written before another tracker's clear_refs was lost";
}

// --- SoftDirtyEngine: the zero-fault / zero-scan acceptance contract -------------

TEST_F(SoftDirtyTrackerTest, EngineMaterializesOnePageDeltaWithNoFaultsNoScan) {
  // Large arena: 64 MiB, so a full scan or full copy would be ~16k pages.
  GuestArena::Layout layout;
  layout.arena_bytes = 64ull << 20;
  layout.stack_bytes = 1ull << 20;
  layout.guard_bytes = 16 * kPageSize;
  GuestArena arena(layout);
  PageStore store;
  SnapshotEngineStats stats;
  {
    auto engine = MakeSnapshotEngine(SnapshotMode::kSoftDirty, MakeEnv(&arena, &store, &stats));
    EXPECT_FALSE(engine->NeedsSignalProtocol());
    Snapshot base;
    engine->Materialize(base);  // settles construction-time writes

    std::memset(arena.PageAddr(1234), 0xAB, kPageSize);
    const uint64_t mat_before = stats.pages_materialized;
    Snapshot snap;
    engine->Materialize(snap);

    // Exactly the one-page delta, discovered by the kernel:
    EXPECT_EQ(stats.pages_materialized, mat_before + 1);
    EXPECT_EQ(stats.dirty_source, DirtySource::kKernelPagemap);
    EXPECT_EQ(stats.materializes_by_pagemap, 2u);
    EXPECT_GT(stats.pagemap_entries_read, 0u);
    EXPECT_GT(stats.soft_dirty_clears, 0u);
    // ...with zero SIGSEGV faults and zero full-arena scan bytes:
    EXPECT_EQ(arena.cow_faults(), 0u);
    EXPECT_FALSE(arena.cow_enabled());
    EXPECT_EQ(stats.incr_pages_scanned, 0u);

    // And the snapshot is a faithful image.
    std::memset(arena.PageAddr(1234), 0xEE, kPageSize);
    std::memset(arena.PageAddr(77), 0xEE, kPageSize);
    engine->Restore(snap);
    EXPECT_EQ(arena.PageAddr(1234)[0], 0xAB);
    EXPECT_EQ(arena.PageAddr(77)[0], 0x00);
  }
  EXPECT_LE(store.stats().live_blobs, 1u);
}

// --- AdaptiveEngine: selection, switching, fallback ------------------------------

TEST(AdaptiveEngineTest, SwitchesMechanismWithObservedDirtyRate) {
#ifdef __SANITIZE_THREAD__
  GTEST_SKIP() << "adaptive may arm the CoW SIGSEGV protocol (TSan conflict)";
#endif
  GuestArena arena(SmallLayout());
  PageStore store;
  SnapshotEngineStats stats;
  AdaptiveEngine engine(MakeEnv(&arena, &store, &stats));
  // Opens in faults: exact delta from checkpoint one, and no scan probe
  // demand-faulting the whole fresh arena (see adaptive_engine.h).
  EXPECT_EQ(engine.current_mechanism(), DirtySource::kFaults);

  // Tiny deltas: per-page fault cost beats whole-arena work; the engine must
  // stay in the faults mechanism, and the CoW protocol is live.
  std::vector<Snapshot> snaps(24);
  size_t si = 0;
  for (int round = 0; round < 6; ++round) {
    arena.PageAddr(5)[0] = static_cast<uint8_t>(round + 1);
    engine.Materialize(snaps[si++]);
  }
  EXPECT_EQ(engine.current_mechanism(), DirtySource::kFaults);
  EXPECT_EQ(stats.adaptive_switches, 0u);
  EXPECT_GT(stats.materializes_by_faults, 0u);
  EXPECT_GT(arena.cow_faults(), 0u);

  // Huge deltas: per-page fault cost now dwarfs scan/full; the engine must
  // abandon the faults mechanism (EWMA reacts within a few checkpoints).
  for (int round = 0; round < 4; ++round) {
    for (uint32_t page = 0; page < 400; ++page) {
      arena.PageAddr(page)[0] = static_cast<uint8_t>(round * 31 + page);
    }
    engine.Materialize(snaps[si++]);
  }
  EXPECT_NE(engine.current_mechanism(), DirtySource::kFaults);
  EXPECT_GE(stats.adaptive_switches, 1u);

  // Round trips stay exact across mechanism changes.
  std::memset(arena.PageAddr(5), 0xEE, kPageSize);
  engine.Restore(snaps[3]);
  EXPECT_EQ(arena.PageAddr(5)[0], 4u);
  engine.Restore(snaps[si - 1]);
  EXPECT_EQ(arena.PageAddr(0)[0], static_cast<uint8_t>(3 * 31));
}

TEST(AdaptiveEngineTest, FallsBackCleanlyWithoutSoftDirty) {
#ifdef __SANITIZE_THREAD__
  GTEST_SKIP() << "adaptive may arm the CoW SIGSEGV protocol (TSan conflict)";
#endif
  // Runs everywhere: on hosts with soft-dirty it simply checks the adaptive
  // session works end to end; on hosts without, it additionally proves the
  // pagemap mechanism was never chosen.
  int n = 8;
  SessionOptions options;
  options.arena_bytes = 1ull << 20;
  options.guest_stack_bytes = 256 * 1024;
  options.snapshot_mode = SnapshotMode::kAdaptive;
  options.output = [](std::string_view) {};
  BacktrackSession session(options);
  auto guest = [](void* arg) {
    int queens = *static_cast<int*>(arg);
    struct Board {
      int row[16];
      int ld[32];
      int rd[32];
    };
    auto* s = static_cast<BacktrackSession*>(CurrentExecutor());
    auto* b = GuestNew<Board>(s->heap());
    std::memset(b, 0, sizeof(Board));
    if (sys_guess_strategy(StrategyKind::kDfs)) {
      for (int c = 0; c < queens; ++c) {
        int r = sys_guess(queens);
        if (b->row[r] || b->ld[r + c] || b->rd[queens + r - c]) {
          sys_guess_fail();
        }
        b->row[r] = 1;
        b->ld[r + c] = 1;
        b->rd[queens + r - c] = 1;
      }
      sys_note_solution();
      sys_guess_fail();
    }
  };
  ASSERT_TRUE(session.Run(guest, &n).ok());
  EXPECT_EQ(session.stats().solutions, 92u);
  if (!SoftDirtyTracker::Supported()) {
    EXPECT_EQ(session.stats().materializes_by_pagemap, 0u)
        << "pagemap mechanism selected on a host without soft-dirty";
    EXPECT_EQ(session.stats().soft_dirty_clears, 0u);
  }
  const uint64_t total = session.stats().materializes_by_faults +
                         session.stats().materializes_by_scan +
                         session.stats().materializes_by_pagemap +
                         session.stats().materializes_by_full;
  EXPECT_EQ(total, session.stats().snapshots);
}

}  // namespace
}  // namespace lw
