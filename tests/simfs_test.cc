// simfs unit tests: path normalization, chunk-CoW file contents, namespace
// operations, whole-FS snapshot/restore, and structural-sharing invariants.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>
#include <vector>

#include "src/simfs/fd_table.h"
#include "src/simfs/file.h"
#include "src/simfs/fs.h"
#include "src/simfs/path.h"
#include "src/util/rng.h"

namespace lw {
namespace {

// --- path.h ---

TEST(PathTest, ValidComponents) {
  EXPECT_TRUE(IsValidPathComponent("a"));
  EXPECT_TRUE(IsValidPathComponent("file.txt"));
  EXPECT_TRUE(IsValidPathComponent("..."));
  EXPECT_FALSE(IsValidPathComponent(""));
  EXPECT_FALSE(IsValidPathComponent("."));
  EXPECT_FALSE(IsValidPathComponent(".."));
  EXPECT_FALSE(IsValidPathComponent("a/b"));
  EXPECT_FALSE(IsValidPathComponent(std::string_view("a\0b", 3)));
}

TEST(PathTest, SplitNormalizes) {
  std::vector<std::string> parts;
  ASSERT_TRUE(SplitPath("/a//b/./c/../d", &parts));
  EXPECT_EQ(parts, (std::vector<std::string>{"a", "b", "d"}));

  ASSERT_TRUE(SplitPath("/", &parts));
  EXPECT_TRUE(parts.empty());

  ASSERT_TRUE(SplitPath("/a/..", &parts));
  EXPECT_TRUE(parts.empty());
}

TEST(PathTest, SplitRejectsBadPaths) {
  std::vector<std::string> parts;
  EXPECT_FALSE(SplitPath("", &parts));
  EXPECT_FALSE(SplitPath("relative/path", &parts));
  EXPECT_FALSE(SplitPath("/..", &parts));
  EXPECT_FALSE(SplitPath("/a/../..", &parts));
}

TEST(PathTest, JoinAndNormalize) {
  EXPECT_EQ(JoinPath({}), "/");
  EXPECT_EQ(JoinPath({"a", "b"}), "/a/b");
  EXPECT_EQ(NormalizePath("//x///y/"), "/x/y");
  EXPECT_EQ(NormalizePath("bad"), "");
}

TEST(PathTest, DirnameBasename) {
  EXPECT_EQ(DirnamePath("/a/b"), "/a");
  EXPECT_EQ(DirnamePath("/a"), "/");
  EXPECT_EQ(DirnamePath("/"), "");
  EXPECT_EQ(BasenamePath("/a/b"), "b");
  EXPECT_EQ(BasenamePath("/"), "");
}

// --- file.h ---

TEST(FileDataTest, EmptyReadsNothing) {
  FileData d;
  char buf[8];
  EXPECT_EQ(d.size(), 0u);
  EXPECT_EQ(d.Read(0, buf, sizeof buf), 0u);
}

TEST(FileDataTest, WriteThenRead) {
  FileData d = FileData().Write(0, "hello", 5);
  EXPECT_EQ(d.size(), 5u);
  EXPECT_EQ(d.ToString(), "hello");
}

TEST(FileDataTest, WriteIsFunctional) {
  FileData a = FileData().Write(0, "aaaa", 4);
  FileData b = a.Write(1, "XX", 2);
  EXPECT_EQ(a.ToString(), "aaaa");  // original untouched
  EXPECT_EQ(b.ToString(), "aXXa");
}

TEST(FileDataTest, SparseWriteReadsZerosInHole) {
  FileData d = FileData().Write(3 * FileData::kChunkSize, "Z", 1);
  EXPECT_EQ(d.size(), 3 * FileData::kChunkSize + 1);
  // Chunks 0..2 are holes.
  EXPECT_EQ(d.MaterializedBytes(), FileData::kChunkSize);
  char c = 'x';
  EXPECT_EQ(d.Read(10, &c, 1), 1u);
  EXPECT_EQ(c, '\0');
  EXPECT_EQ(d.Read(3 * FileData::kChunkSize, &c, 1), 1u);
  EXPECT_EQ(c, 'Z');
}

TEST(FileDataTest, CrossChunkWrite) {
  std::string big(FileData::kChunkSize + 100, 'q');
  FileData d = FileData().Write(FileData::kChunkSize - 50, big.data(), big.size());
  EXPECT_EQ(d.size(), FileData::kChunkSize - 50 + big.size());
  std::string out(big.size(), '\0');
  EXPECT_EQ(d.Read(FileData::kChunkSize - 50, out.data(), out.size()), big.size());
  EXPECT_EQ(out, big);
}

TEST(FileDataTest, UntouchedChunksAreShared) {
  std::string filler(4 * FileData::kChunkSize, 'f');
  FileData a = FileData().Write(0, filler.data(), filler.size());
  FileData b = a.Write(FileData::kChunkSize, "MOD", 3);  // touches chunk 1 only
  EXPECT_TRUE(b.SharesChunkWith(a, 0));
  EXPECT_FALSE(b.SharesChunkWith(a, 1));
  EXPECT_TRUE(b.SharesChunkWith(a, 2));
  EXPECT_TRUE(b.SharesChunkWith(a, 3));
}

TEST(FileDataTest, TruncateShrinkZeroesBoundaryTail) {
  std::string filler(2 * FileData::kChunkSize, 'f');
  FileData a = FileData().Write(0, filler.data(), filler.size());
  FileData b = a.Truncate(100);
  EXPECT_EQ(b.size(), 100u);
  // Re-extend: bytes past 100 must read as zeros, not stale 'f'.
  FileData c = b.Truncate(200);
  char buf[100];
  EXPECT_EQ(c.Read(100, buf, 100), 100u);
  for (char ch : buf) {
    EXPECT_EQ(ch, '\0');
  }
  EXPECT_EQ(a.size(), 2 * FileData::kChunkSize);  // original untouched
}

TEST(FileDataTest, TruncateGrowMakesHole) {
  FileData a = FileData().Write(0, "x", 1);
  FileData b = a.Truncate(10 * FileData::kChunkSize);
  EXPECT_EQ(b.size(), 10 * FileData::kChunkSize);
  EXPECT_EQ(b.MaterializedBytes(), FileData::kChunkSize);  // only chunk 0
}

TEST(FileDataTest, ContentEqualsTreatsHolesAsZeros) {
  FileData hole = FileData().Truncate(FileData::kChunkSize);
  std::string zeros(FileData::kChunkSize, '\0');
  FileData explicit_zeros = FileData().Write(0, zeros.data(), zeros.size());
  EXPECT_TRUE(hole.ContentEquals(explicit_zeros));
  EXPECT_TRUE(explicit_zeros.ContentEquals(hole));
  FileData different = explicit_zeros.Write(17, "x", 1);
  EXPECT_FALSE(hole.ContentEquals(different));
}

TEST(FileDataTest, FromString) {
  FileData d = FileData::FromString("content");
  EXPECT_EQ(d.ToString(), "content");
}

// Property sweep: random functional writes against a plain-string model.
class FileDataRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FileDataRandomTest, MatchesStringModel) {
  Rng rng(GetParam());
  FileData d;
  std::string model;
  for (int op = 0; op < 200; ++op) {
    if (rng.Next() % 4 == 0) {
      size_t new_size = rng.Next() % (3 * FileData::kChunkSize);
      d = d.Truncate(new_size);
      model.resize(new_size, '\0');
    } else {
      size_t off = rng.Next() % (2 * FileData::kChunkSize);
      size_t len = 1 + rng.Next() % 300;
      std::string payload(len, static_cast<char>('a' + op % 26));
      d = d.Write(off, payload.data(), len);
      if (model.size() < off + len) {
        model.resize(off + len, '\0');
      }
      model.replace(off, len, payload);
    }
    ASSERT_EQ(d.size(), model.size());
  }
  EXPECT_EQ(d.ToString(), model);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FileDataRandomTest, ::testing::Values(1, 2, 3, 42, 1234));

// --- fs.h ---

TEST(SimFsTest, RootExists) {
  SimFs fs;
  auto st = fs.Stat("/");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->ino, SimFs::kRootIno);
  EXPECT_EQ(st->type, NodeType::kDir);
  EXPECT_EQ(fs.live_inodes(), 1u);
}

TEST(SimFsTest, CreateWriteRead) {
  SimFs fs;
  auto ino = fs.Create("/hello.txt");
  ASSERT_TRUE(ino.ok());
  ASSERT_TRUE(fs.WriteAt(*ino, 0, "world", 5).ok());
  char buf[16] = {};
  auto n = fs.ReadAt(*ino, 0, buf, sizeof buf);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 5u);
  EXPECT_EQ(std::string(buf, 5), "world");
}

TEST(SimFsTest, CreateRequiresParent) {
  SimFs fs;
  EXPECT_EQ(fs.Create("/no/such/dir/f").status().code(), ErrorCode::kNotFound);
  ASSERT_TRUE(fs.Mkdir("/no").ok());
  ASSERT_TRUE(fs.Mkdir("/no/such").ok());
  ASSERT_TRUE(fs.Mkdir("/no/such/dir").ok());
  EXPECT_TRUE(fs.Create("/no/such/dir/f").ok());
}

TEST(SimFsTest, CreateDuplicateFails) {
  SimFs fs;
  ASSERT_TRUE(fs.Create("/f").ok());
  EXPECT_EQ(fs.Create("/f").status().code(), ErrorCode::kAlreadyExists);
  EXPECT_EQ(fs.Mkdir("/f").status().code(), ErrorCode::kAlreadyExists);
}

TEST(SimFsTest, LookupNormalizesPath) {
  SimFs fs;
  ASSERT_TRUE(fs.Mkdir("/a").ok());
  ASSERT_TRUE(fs.Create("/a/f").ok());
  auto direct = fs.Lookup("/a/f");
  auto crooked = fs.Lookup("//a/./b/../f");
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(crooked.ok());
  EXPECT_EQ(*direct, *crooked);
}

TEST(SimFsTest, UnlinkFile) {
  SimFs fs;
  ASSERT_TRUE(fs.Create("/f").ok());
  EXPECT_EQ(fs.live_inodes(), 2u);
  ASSERT_TRUE(fs.Unlink("/f").ok());
  EXPECT_EQ(fs.live_inodes(), 1u);
  EXPECT_EQ(fs.Lookup("/f").status().code(), ErrorCode::kNotFound);
}

TEST(SimFsTest, UnlinkNonEmptyDirFails) {
  SimFs fs;
  ASSERT_TRUE(fs.Mkdir("/d").ok());
  ASSERT_TRUE(fs.Create("/d/f").ok());
  EXPECT_EQ(fs.Unlink("/d").code(), ErrorCode::kBadState);
  ASSERT_TRUE(fs.Unlink("/d/f").ok());
  EXPECT_TRUE(fs.Unlink("/d").ok());
}

TEST(SimFsTest, RenameMovesAndReplaces) {
  SimFs fs;
  ASSERT_TRUE(fs.Mkdir("/a").ok());
  ASSERT_TRUE(fs.Mkdir("/b").ok());
  auto f = fs.Create("/a/f");
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(fs.WriteAt(*f, 0, "data", 4).ok());

  ASSERT_TRUE(fs.Rename("/a/f", "/b/g").ok());
  EXPECT_EQ(fs.Lookup("/a/f").status().code(), ErrorCode::kNotFound);
  auto g = fs.Lookup("/b/g");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(*g, *f);  // same inode moved

  // Replacing an existing file drops the victim.
  auto v = fs.Create("/b/victim");
  ASSERT_TRUE(v.ok());
  uint64_t before = fs.live_inodes();
  ASSERT_TRUE(fs.Rename("/b/g", "/b/victim").ok());
  EXPECT_EQ(fs.live_inodes(), before - 1);
  auto moved = fs.Lookup("/b/victim");
  ASSERT_TRUE(moved.ok());
  EXPECT_EQ(*moved, *f);
}

TEST(SimFsTest, RenameRejectsCycleAndDirOnto) {
  SimFs fs;
  ASSERT_TRUE(fs.Mkdir("/d").ok());
  ASSERT_TRUE(fs.Mkdir("/d/sub").ok());
  EXPECT_EQ(fs.Rename("/d", "/d/sub/d2").code(), ErrorCode::kBadState);
  ASSERT_TRUE(fs.Create("/f").ok());
  EXPECT_EQ(fs.Rename("/f", "/d").code(), ErrorCode::kBadState);
  EXPECT_EQ(fs.Rename("/d", "/f").code(), ErrorCode::kBadState);
}

TEST(SimFsTest, RenameToSelfIsNoop) {
  SimFs fs;
  ASSERT_TRUE(fs.Create("/f").ok());
  EXPECT_TRUE(fs.Rename("/f", "/f").ok());
  EXPECT_TRUE(fs.Lookup("/f").ok());
}

TEST(SimFsTest, ReaddirSorted) {
  SimFs fs;
  ASSERT_TRUE(fs.Create("/zz").ok());
  ASSERT_TRUE(fs.Create("/aa").ok());
  ASSERT_TRUE(fs.Mkdir("/mm").ok());
  auto names = fs.Readdir("/");
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(*names, (std::vector<std::string>{"aa", "mm", "zz"}));
}

TEST(SimFsTest, StatReportsSizes) {
  SimFs fs;
  auto f = fs.Create("/f");
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(fs.WriteAt(*f, 0, "12345678", 8).ok());
  auto st = fs.Stat("/f");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->size, 8u);
  EXPECT_EQ(st->type, NodeType::kFile);
  auto root = fs.Stat("/");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(root->size, 1u);  // one entry
}

TEST(SimFsTest, IoOnDirectoryFails) {
  SimFs fs;
  ASSERT_TRUE(fs.Mkdir("/d").ok());
  auto ino = fs.Lookup("/d");
  ASSERT_TRUE(ino.ok());
  char b;
  EXPECT_EQ(fs.ReadAt(*ino, 0, &b, 1).status().code(), ErrorCode::kBadState);
  EXPECT_EQ(fs.WriteAt(*ino, 0, &b, 1).status().code(), ErrorCode::kBadState);
  EXPECT_EQ(fs.Truncate(*ino, 0).code(), ErrorCode::kBadState);
}

// --- snapshot/restore ---

TEST(SimFsSnapshotTest, RestoreRewindsEverything) {
  SimFs fs;
  auto f = fs.Create("/keep");
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(fs.WriteAt(*f, 0, "original", 8).ok());

  SimFs::State snap = fs.TakeSnapshot();

  // Mutate heavily after the snapshot.
  ASSERT_TRUE(fs.WriteAt(*f, 0, "CLOBBERED", 9).ok());
  ASSERT_TRUE(fs.Mkdir("/newdir").ok());
  ASSERT_TRUE(fs.Create("/newdir/x").ok());
  ASSERT_TRUE(fs.Unlink("/keep").ok());

  fs.Restore(snap);

  char buf[16] = {};
  auto n = fs.ReadAt(*f, 0, buf, sizeof buf);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(std::string(buf, *n), "original");
  EXPECT_EQ(fs.Lookup("/newdir").status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(fs.live_inodes(), 2u);
}

TEST(SimFsSnapshotTest, SnapshotIsImmutableUnderLaterWrites) {
  SimFs fs;
  auto f = fs.Create("/f");
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(fs.WriteAt(*f, 0, "v1", 2).ok());
  SimFs::State s1 = fs.TakeSnapshot();
  ASSERT_TRUE(fs.WriteAt(*f, 0, "v2", 2).ok());
  SimFs::State s2 = fs.TakeSnapshot();

  fs.Restore(s1);
  char buf[4] = {};
  ASSERT_TRUE(fs.ReadAt(*f, 0, buf, 2).ok());
  EXPECT_EQ(std::string(buf, 2), "v1");

  fs.Restore(s2);
  ASSERT_TRUE(fs.ReadAt(*f, 0, buf, 2).ok());
  EXPECT_EQ(std::string(buf, 2), "v2");
}

TEST(SimFsSnapshotTest, SnapshotTreeBranches) {
  // Branch two divergent futures off one snapshot, like two extension steps.
  SimFs fs;
  auto f = fs.Create("/f");
  ASSERT_TRUE(f.ok());
  SimFs::State base = fs.TakeSnapshot();

  ASSERT_TRUE(fs.WriteAt(*f, 0, "left", 4).ok());
  SimFs::State left = fs.TakeSnapshot();

  fs.Restore(base);
  ASSERT_TRUE(fs.WriteAt(*f, 0, "right", 5).ok());
  SimFs::State right = fs.TakeSnapshot();

  char buf[8] = {};
  fs.Restore(left);
  auto n = fs.ReadAt(*f, 0, buf, sizeof buf);
  EXPECT_EQ(std::string(buf, *n), "left");
  fs.Restore(right);
  n = fs.ReadAt(*f, 0, buf, sizeof buf);
  EXPECT_EQ(std::string(buf, *n), "right");
}

TEST(SimFsSnapshotTest, InodeNumbersStableAcrossRestore) {
  // An extension holding an ino (via an open fd) must see the same file after
  // its snapshot is restored.
  SimFs fs;
  auto a = fs.Create("/a");
  ASSERT_TRUE(a.ok());
  SimFs::State snap = fs.TakeSnapshot();
  ASSERT_TRUE(fs.Unlink("/a").ok());
  auto b = fs.Create("/b");  // may reuse the ino
  ASSERT_TRUE(b.ok());
  fs.Restore(snap);
  auto again = fs.Lookup("/a");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, *a);
}

TEST(SimFsSnapshotTest, ManySnapshotsShareStructure) {
  SimFs fs;
  auto f = fs.Create("/big");
  ASSERT_TRUE(f.ok());
  std::string chunk(FileData::kChunkSize, 'd');
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(fs.WriteAt(*f, i * FileData::kChunkSize, chunk.data(), chunk.size()).ok());
  }
  uint64_t base_bytes = fs.MaterializedBytes();

  std::vector<SimFs::State> snaps;
  for (int i = 0; i < 100; ++i) {
    // Touch one chunk, snapshot.
    ASSERT_TRUE(fs.WriteAt(*f, (i % 64) * FileData::kChunkSize, "t", 1).ok());
    snaps.push_back(fs.TakeSnapshot());
  }
  // Live materialized bytes unchanged: snapshots share, they don't copy.
  EXPECT_EQ(fs.MaterializedBytes(), base_bytes);
}

// Property sweep: random op sequences, snapshot at random points, restore and
// compare against a std::map<string,string> model captured at the same points.
class SimFsRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SimFsRandomTest, RestoreMatchesModel) {
  Rng rng(GetParam());
  SimFs fs;
  std::map<std::string, std::string> model;  // path -> contents (files only)
  std::vector<std::pair<SimFs::State, std::map<std::string, std::string>>> snaps;

  auto random_name = [&rng]() { return std::string("/f") + std::to_string(rng.Next() % 8); };

  for (int op = 0; op < 400; ++op) {
    switch (rng.Next() % 5) {
      case 0: {  // create
        std::string p = random_name();
        auto r = fs.Create(p);
        if (r.ok()) {
          ASSERT_EQ(model.count(p), 0u);
          model[p] = "";
        } else {
          ASSERT_EQ(model.count(p), 1u);
        }
        break;
      }
      case 1: {  // write whole contents
        std::string p = random_name();
        auto ino = fs.Lookup(p);
        std::string payload(1 + rng.Next() % 64, static_cast<char>('a' + op % 26));
        if (ino.ok()) {
          ASSERT_TRUE(fs.Truncate(*ino, 0).ok());
          ASSERT_TRUE(fs.WriteAt(*ino, 0, payload.data(), payload.size()).ok());
          model[p] = payload;
        }
        break;
      }
      case 2: {  // unlink
        std::string p = random_name();
        Status s = fs.Unlink(p);
        EXPECT_EQ(s.ok(), model.erase(p) == 1);
        break;
      }
      case 3: {  // snapshot
        snaps.emplace_back(fs.TakeSnapshot(), model);
        break;
      }
      case 4: {  // restore to a random earlier snapshot
        if (!snaps.empty()) {
          size_t i = rng.Next() % snaps.size();
          fs.Restore(snaps[i].first);
          model = snaps[i].second;
        }
        break;
      }
    }
  }

  // Final check: every model file readable with matching contents; no extras.
  auto names = fs.Readdir("/");
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names->size(), model.size());
  for (const auto& [path, contents] : model) {
    auto ino = fs.Lookup(path);
    ASSERT_TRUE(ino.ok()) << path;
    std::string buf(contents.size() + 8, '\0');
    auto n = fs.ReadAt(*ino, 0, buf.data(), buf.size());
    ASSERT_TRUE(n.ok());
    EXPECT_EQ(std::string(buf.data(), *n), contents) << path;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimFsRandomTest, ::testing::Values(7, 99, 12345));

// --- fd_table.h ---

TEST(FdTableTest, AllocLowestFree) {
  FdTable t;
  auto a = t.Alloc(10, kOpenRead);
  auto b = t.Alloc(11, kOpenRead);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, FdTable::kFirstFd);
  EXPECT_EQ(*b, FdTable::kFirstFd + 1);
  ASSERT_TRUE(t.Close(*a).ok());
  auto c = t.Alloc(12, kOpenRead);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*c, FdTable::kFirstFd);  // reuses the lowest slot
}

TEST(FdTableTest, GetAndClose) {
  FdTable t;
  auto fd = t.Alloc(42, kOpenRead | kOpenWrite);
  ASSERT_TRUE(fd.ok());
  FdEntry* e = t.Get(*fd);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->ino, 42u);
  e->offset = 100;
  EXPECT_EQ(t.Get(*fd)->offset, 100u);
  ASSERT_TRUE(t.Close(*fd).ok());
  EXPECT_EQ(t.Get(*fd), nullptr);
  EXPECT_FALSE(t.Close(*fd).ok());
}

TEST(FdTableTest, InvalidFds) {
  FdTable t;
  EXPECT_EQ(t.Get(-1), nullptr);
  EXPECT_EQ(t.Get(0), nullptr);  // std streams are not in the table
  EXPECT_EQ(t.Get(2), nullptr);
  EXPECT_EQ(t.Get(FdTable::kFirstFd), nullptr);
}

TEST(FdTableTest, CloneIsIndependent) {
  FdTable t;
  auto fd = t.Alloc(7, kOpenRead);
  ASSERT_TRUE(fd.ok());
  FdTable snap = t.Clone();
  t.Get(*fd)->offset = 999;
  ASSERT_TRUE(t.Close(*fd).ok());
  EXPECT_EQ(snap.Get(*fd)->offset, 0u);
  EXPECT_EQ(snap.open_count(), 1u);
  EXPECT_EQ(t.open_count(), 0u);
}

}  // namespace
}  // namespace lw
