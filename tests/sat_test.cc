// lwsat tests: DIMACS codec, workload generators, CDCL correctness on known
// formulas, model validity on random 3-SAT sweeps, assumptions and unsat cores,
// incremental clause addition, and conflict budgets.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/solver/cnf.h"
#include "src/solver/lit.h"
#include "src/solver/sat.h"
#include "src/util/rng.h"

namespace lw {
namespace {

// --- lit.h ---

TEST(LitTest, Encoding) {
  Lit p = MakeLit(3);
  Lit np = MakeLit(3, true);
  EXPECT_EQ(LitVar(p), 3);
  EXPECT_EQ(LitVar(np), 3);
  EXPECT_FALSE(LitSign(p));
  EXPECT_TRUE(LitSign(np));
  EXPECT_EQ(~p, np);
  EXPECT_EQ(~np, p);
  EXPECT_EQ(LitIndex(p), 6);
  EXPECT_EQ(LitIndex(np), 7);
}

TEST(LitTest, LBoolAlgebra) {
  EXPECT_TRUE(kTrue.IsTrue());
  EXPECT_TRUE(kFalse.IsFalse());
  EXPECT_TRUE(kUndef.IsUndef());
  EXPECT_EQ(kTrue.Xor(true), kFalse);
  EXPECT_EQ(kFalse.Xor(true), kTrue);
  EXPECT_TRUE(kUndef.Xor(true).IsUndef());
  EXPECT_EQ(kUndef, kUndef.Xor(true));
  EXPECT_NE(kTrue, kFalse);
  EXPECT_NE(kTrue, kUndef);
}

// --- cnf.h ---

TEST(CnfTest, DimacsRoundTrip) {
  Cnf cnf;
  cnf.AddDimacsClause({1, -2, 3});
  cnf.AddDimacsClause({-1, 2});
  cnf.AddDimacsClause({-3});
  std::string text = cnf.ToDimacs();
  auto parsed = Cnf::FromDimacs(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->num_vars, 3);
  ASSERT_EQ(parsed->clauses.size(), 3u);
  EXPECT_EQ(parsed->clauses[0], cnf.clauses[0]);
  EXPECT_EQ(parsed->clauses[2], cnf.clauses[2]);
}

TEST(CnfTest, DimacsCommentsAndWhitespace) {
  auto parsed = Cnf::FromDimacs("c a comment\np cnf 2 2\n1 2 0\nc mid comment\n-1 -2 0\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->clauses.size(), 2u);
}

TEST(CnfTest, DimacsErrors) {
  EXPECT_FALSE(Cnf::FromDimacs("1 2 0\n").ok());            // no header
  EXPECT_FALSE(Cnf::FromDimacs("p cnf 2 1\n1 2\n").ok());   // unterminated clause
  EXPECT_FALSE(Cnf::FromDimacs("p cnf 2 5\n1 0\n").ok());   // count mismatch
}

TEST(CnfTest, IsSatisfiedBy) {
  Cnf cnf;
  cnf.AddDimacsClause({1, 2});
  cnf.AddDimacsClause({-1, 2});
  EXPECT_TRUE(cnf.IsSatisfiedBy({false, true}));
  EXPECT_FALSE(cnf.IsSatisfiedBy({true, false}));
}

TEST(CnfTest, RandomKSatShape) {
  Rng rng(11);
  Cnf cnf = RandomKSat(&rng, 50, 200, 3);
  EXPECT_EQ(cnf.num_vars, 50);
  EXPECT_EQ(cnf.clauses.size(), 200u);
  for (const auto& clause : cnf.clauses) {
    ASSERT_EQ(clause.size(), 3u);
    // Distinct variables within a clause.
    EXPECT_NE(LitVar(clause[0]), LitVar(clause[1]));
    EXPECT_NE(LitVar(clause[0]), LitVar(clause[2]));
    EXPECT_NE(LitVar(clause[1]), LitVar(clause[2]));
  }
}

// --- solver: basic semantics ---

TEST(SolverTest, EmptyFormulaIsSat) {
  Solver s;
  EXPECT_TRUE(s.Solve().IsTrue());
}

TEST(SolverTest, UnitPropagation) {
  Solver s;
  s.EnsureVars(2);
  ASSERT_TRUE(s.AddClause({MakeLit(0)}));
  ASSERT_TRUE(s.AddClause({~MakeLit(0), MakeLit(1)}));
  ASSERT_TRUE(s.Solve().IsTrue());
  EXPECT_TRUE(s.ModelValue(0).IsTrue());
  EXPECT_TRUE(s.ModelValue(1).IsTrue());
}

TEST(SolverTest, ContradictionAtLevelZero) {
  Solver s;
  s.EnsureVars(1);
  ASSERT_TRUE(s.AddClause({MakeLit(0)}));
  EXPECT_FALSE(s.AddClause({~MakeLit(0)}));
  EXPECT_FALSE(s.okay());
  EXPECT_TRUE(s.Solve().IsFalse());
}

TEST(SolverTest, TautologyAndDuplicatesSimplified) {
  Solver s;
  s.EnsureVars(2);
  ASSERT_TRUE(s.AddClause({MakeLit(0), ~MakeLit(0)}));        // tautology: dropped
  ASSERT_TRUE(s.AddClause({MakeLit(1), MakeLit(1)}));         // dup: unit
  ASSERT_TRUE(s.Solve().IsTrue());
  EXPECT_TRUE(s.ModelValue(1).IsTrue());
}

TEST(SolverTest, SimpleUnsat) {
  // (a∨b) ∧ (a∨¬b) ∧ (¬a∨b) ∧ (¬a∨¬b)
  Solver s;
  s.EnsureVars(2);
  Lit a = MakeLit(0);
  Lit b = MakeLit(1);
  ASSERT_TRUE(s.AddClause({a, b}));
  ASSERT_TRUE(s.AddClause({a, ~b}));
  ASSERT_TRUE(s.AddClause({~a, b}));
  s.AddClause({~a, ~b});
  EXPECT_TRUE(s.Solve().IsFalse());
}

TEST(SolverTest, XorChainSat) {
  // x0 xor x1 = 1, x1 xor x2 = 1, ... forces alternation; satisfiable.
  Solver s;
  const int n = 20;
  s.EnsureVars(n);
  for (int i = 0; i + 1 < n; ++i) {
    Lit a = MakeLit(i);
    Lit b = MakeLit(i + 1);
    ASSERT_TRUE(s.AddClause({a, b}));
    ASSERT_TRUE(s.AddClause({~a, ~b}));
  }
  ASSERT_TRUE(s.AddClause({MakeLit(0)}));
  ASSERT_TRUE(s.Solve().IsTrue());
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(s.ModelValue(i).IsTrue(), i % 2 == 0) << i;
  }
}

TEST(SolverTest, PigeonholeUnsat) {
  for (int holes = 2; holes <= 5; ++holes) {
    Cnf cnf = Pigeonhole(holes);
    Solver s;
    s.EnsureVars(cnf.num_vars);
    for (const auto& clause : cnf.clauses) {
      s.AddClause(clause.data(), static_cast<uint32_t>(clause.size()));
    }
    EXPECT_TRUE(s.Solve().IsFalse()) << "PHP(" << holes + 1 << "," << holes << ")";
  }
}

TEST(SolverTest, GraphColoringTriangle) {
  // A triangle is 3-colorable but not 2-colorable. Build it by hand.
  for (int colors = 2; colors <= 3; ++colors) {
    Cnf cnf;
    cnf.num_vars = 3 * colors;
    auto v = [colors](int node, int c) { return MakeLit(node * colors + c); };
    for (int node = 0; node < 3; ++node) {
      std::vector<Lit> some;
      for (int c = 0; c < colors; ++c) {
        some.push_back(v(node, c));
      }
      cnf.AddClause(some);
    }
    for (int e = 0; e < 3; ++e) {
      int a = e;
      int b = (e + 1) % 3;
      for (int c = 0; c < colors; ++c) {
        cnf.AddClause({~v(a, c), ~v(b, c)});
      }
    }
    Solver s;
    s.EnsureVars(cnf.num_vars);
    for (const auto& clause : cnf.clauses) {
      s.AddClause(clause.data(), static_cast<uint32_t>(clause.size()));
    }
    EXPECT_EQ(s.Solve().IsTrue(), colors == 3);
  }
}

// --- model validity on random instances (the key soundness property) ---

class RandomSatTest : public ::testing::TestWithParam<std::tuple<int, double, uint64_t>> {};

TEST_P(RandomSatTest, ModelsSatisfyFormula) {
  auto [num_vars, ratio, seed] = GetParam();
  Rng rng(seed);
  Cnf cnf = RandomKSat(&rng, num_vars, static_cast<size_t>(num_vars * ratio), 3);
  Solver s;
  s.EnsureVars(cnf.num_vars);
  bool consistent = true;
  for (const auto& clause : cnf.clauses) {
    consistent = s.AddClause(clause.data(), static_cast<uint32_t>(clause.size())) && consistent;
  }
  LBool result = s.Solve();
  ASSERT_FALSE(result.IsUndef());
  if (result.IsTrue()) {
    std::vector<bool> model(cnf.num_vars);
    for (Var v = 0; v < cnf.num_vars; ++v) {
      model[v] = s.ModelValue(v).IsTrue();
    }
    EXPECT_TRUE(cnf.IsSatisfiedBy(model));
  } else {
    // UNSAT answers are cross-checked at low ratio only statistically; here we
    // at least require the solver to have done real work or found a level-0
    // contradiction.
    EXPECT_TRUE(!consistent || s.stats().conflicts > 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomSatTest,
    ::testing::Values(std::make_tuple(30, 3.0, 1), std::make_tuple(30, 4.26, 2),
                      std::make_tuple(60, 3.5, 3), std::make_tuple(60, 4.26, 4),
                      std::make_tuple(100, 4.0, 5), std::make_tuple(100, 4.26, 6),
                      std::make_tuple(150, 4.26, 7), std::make_tuple(150, 5.2, 8),
                      std::make_tuple(200, 4.0, 9), std::make_tuple(200, 4.26, 10)));

// Exhaustive cross-check against brute force on small formulas.
class BruteForceCrossCheck : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BruteForceCrossCheck, AgreesWithEnumeration) {
  Rng rng(GetParam());
  for (int round = 0; round < 20; ++round) {
    int num_vars = 4 + static_cast<int>(rng.Next() % 9);  // 4..12
    size_t num_clauses = static_cast<size_t>(num_vars * (2 + rng.Next() % 4));
    Cnf cnf = RandomKSat(&rng, num_vars, num_clauses, 3);

    bool brute_sat = false;
    for (uint32_t mask = 0; mask < (1u << num_vars) && !brute_sat; ++mask) {
      std::vector<bool> assignment(num_vars);
      for (int v = 0; v < num_vars; ++v) {
        assignment[v] = (mask >> v) & 1;
      }
      brute_sat = cnf.IsSatisfiedBy(assignment);
    }

    Solver s;
    s.EnsureVars(cnf.num_vars);
    for (const auto& clause : cnf.clauses) {
      s.AddClause(clause.data(), static_cast<uint32_t>(clause.size()));
    }
    LBool result = s.Solve();
    ASSERT_FALSE(result.IsUndef());
    EXPECT_EQ(result.IsTrue(), brute_sat) << "round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BruteForceCrossCheck, ::testing::Values(21, 22, 23, 24, 25));

// --- assumptions ---

TEST(SolverAssumptionsTest, AssumptionsSteerModels) {
  Solver s;
  s.EnsureVars(2);
  Lit a = MakeLit(0);
  Lit b = MakeLit(1);
  ASSERT_TRUE(s.AddClause({a, b}));

  Lit assume_na[] = {~a};
  ASSERT_TRUE(s.Solve(assume_na, 1).IsTrue());
  EXPECT_TRUE(s.ModelValue(0).IsFalse());
  EXPECT_TRUE(s.ModelValue(1).IsTrue());

  // The solver is reusable after assumption solves.
  Lit assume_nb[] = {~b};
  ASSERT_TRUE(s.Solve(assume_nb, 1).IsTrue());
  EXPECT_TRUE(s.ModelValue(0).IsTrue());
}

TEST(SolverAssumptionsTest, ConflictingAssumptionsYieldCore) {
  Solver s;
  s.EnsureVars(3);
  Lit a = MakeLit(0);
  Lit b = MakeLit(1);
  Lit c = MakeLit(2);
  ASSERT_TRUE(s.AddClause({~a, ~b}));  // a and b can't both hold

  Lit assumptions[] = {a, b, c};
  ASSERT_TRUE(s.Solve(assumptions, 3).IsFalse());
  EXPECT_TRUE(s.AssumptionFailed(a) || s.AssumptionFailed(b));
  EXPECT_FALSE(s.AssumptionFailed(c));  // c is irrelevant to the conflict

  // Dropping one side of the conflict makes it satisfiable again.
  Lit fewer[] = {a, c};
  EXPECT_TRUE(s.Solve(fewer, 2).IsTrue());
}

TEST(SolverAssumptionsTest, AssumptionFalseAtLevelZero) {
  Solver s;
  s.EnsureVars(1);
  ASSERT_TRUE(s.AddClause({MakeLit(0)}));
  Lit assumptions[] = {~MakeLit(0)};
  EXPECT_TRUE(s.Solve(assumptions, 1).IsFalse());
  EXPECT_TRUE(s.AssumptionFailed(~MakeLit(0)));
}

// --- incremental use ---

TEST(SolverIncrementalTest, AddClausesAfterSolve) {
  Solver s;
  s.EnsureVars(3);
  Lit a = MakeLit(0);
  Lit b = MakeLit(1);
  Lit c = MakeLit(2);
  ASSERT_TRUE(s.AddClause({a, b}));
  ASSERT_TRUE(s.Solve().IsTrue());

  ASSERT_TRUE(s.AddClause({~a}));
  ASSERT_TRUE(s.Solve().IsTrue());
  EXPECT_TRUE(s.ModelValue(1).IsTrue());

  ASSERT_TRUE(s.AddClause({~b, c}));
  ASSERT_TRUE(s.Solve().IsTrue());
  EXPECT_TRUE(s.ModelValue(2).IsTrue());

  // Finally make it UNSAT.
  s.AddClause({~c});
  EXPECT_TRUE(s.Solve().IsFalse());
}

TEST(SolverIncrementalTest, LearnedClausesSpeedUpExtension) {
  // Solve p, then p ∧ q: conflicts for the second call should not restart from
  // the first call's total (the solver keeps its learnt DB).
  Rng rng(77);
  Cnf p = RandomKSat(&rng, 120, 480, 3);
  Solver s;
  s.EnsureVars(p.num_vars);
  for (const auto& clause : p.clauses) {
    s.AddClause(clause.data(), static_cast<uint32_t>(clause.size()));
  }
  LBool first = s.Solve();
  ASSERT_FALSE(first.IsUndef());
  uint64_t conflicts_after_p = s.stats().conflicts;

  Cnf q = RandomKSat(&rng, 120, 24, 3);
  for (const auto& clause : q.clauses) {
    s.AddClause(clause.data(), static_cast<uint32_t>(clause.size()));
  }
  LBool second = s.Solve();
  ASSERT_FALSE(second.IsUndef());
  uint64_t incremental_conflicts = s.stats().conflicts - conflicts_after_p;

  // Scratch re-solve of p ∧ q for comparison.
  Solver scratch;
  scratch.EnsureVars(p.num_vars);
  for (const auto& clause : p.clauses) {
    scratch.AddClause(clause.data(), static_cast<uint32_t>(clause.size()));
  }
  for (const auto& clause : q.clauses) {
    scratch.AddClause(clause.data(), static_cast<uint32_t>(clause.size()));
  }
  LBool scratch_result = scratch.Solve();
  ASSERT_EQ(second.IsTrue(), scratch_result.IsTrue());
  // Soft expectation (not strict: randomness), but incremental should not be
  // wildly worse than scratch on the combined problem.
  EXPECT_LE(incremental_conflicts, scratch.stats().conflicts + 1000);
}

// --- budgets and stats ---

TEST(SolverTest, ConflictBudgetReturnsUndef) {
  SolverOptions options;
  options.max_conflicts = 3;
  Solver s(options);
  Cnf cnf = Pigeonhole(7);  // hard enough to exceed 3 conflicts
  s.EnsureVars(cnf.num_vars);
  for (const auto& clause : cnf.clauses) {
    s.AddClause(clause.data(), static_cast<uint32_t>(clause.size()));
  }
  EXPECT_TRUE(s.Solve().IsUndef());
  EXPECT_GE(s.stats().conflicts, 3u);
}

TEST(SolverTest, StatsAccumulate) {
  Rng rng(5);
  Cnf cnf = RandomKSat(&rng, 80, 340, 3);
  Solver s;
  s.EnsureVars(cnf.num_vars);
  for (const auto& clause : cnf.clauses) {
    s.AddClause(clause.data(), static_cast<uint32_t>(clause.size()));
  }
  ASSERT_FALSE(s.Solve().IsUndef());
  EXPECT_GT(s.stats().decisions, 0u);
  EXPECT_GT(s.stats().propagations, 0u);
  std::string text = s.stats().ToString();
  EXPECT_NE(text.find("decisions="), std::string::npos);
}

TEST(SolverTest, LearntDbReductionFires) {
  SolverOptions options;
  options.learnt_start = 50;  // force reductions early
  Solver s(options);
  Cnf cnf = Pigeonhole(7);
  s.EnsureVars(cnf.num_vars);
  for (const auto& clause : cnf.clauses) {
    s.AddClause(clause.data(), static_cast<uint32_t>(clause.size()));
  }
  EXPECT_TRUE(s.Solve().IsFalse());
  EXPECT_GT(s.stats().reductions, 0u);
  EXPECT_GT(s.stats().removed_clauses, 0u);
}

}  // namespace
}  // namespace lw
