// Parallel, syscall-coalesced Restore (the RestoreContext seam in engine.h):
//   * parity sweep — serial vs workers 1/2/4/8 for every engine: identical
//     post-restore arena bytes, identical pages_restored / skip counters, and
//     (CoW) identical mprotect accounting regardless of worker count;
//   * syscall coalescing — a CoW restore of a delta spread over R contiguous
//     runs issues exactly 2·R mprotect calls (batch-unprotect + batch-
//     reprotect), asserted via restore_mprotect_calls/restore_runs_coalesced;
//   * hot-page skip — unchanged hot pages are memcmp'd and skipped
//     (pages_restore_skipped), changed ones are copied.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "src/core/arena.h"
#include "src/snapshot/engine.h"
#include "src/snapshot/parallel_materializer.h"
#include "src/snapshot/soft_dirty.h"

#if defined(__has_feature)
#if __has_feature(thread_sanitizer) && !defined(__SANITIZE_THREAD__)
#define __SANITIZE_THREAD__ 1
#endif
#endif

namespace lw {
namespace {

bool SkipForMode(SnapshotMode mode, const char** reason) {
#ifdef __SANITIZE_THREAD__
  // kAdaptive may arm the CoW mechanism, so it carries the same TSan conflict.
  if (mode == SnapshotMode::kCow || mode == SnapshotMode::kAdaptive) {
    *reason = "CoW SIGSEGV protocol conflicts with TSan signal interposition";
    return true;
  }
#endif
  if (mode == SnapshotMode::kSoftDirty && !SoftDirtyTracker::Supported()) {
    *reason = "soft-dirty unavailable on this kernel";
    return true;
  }
  (void)reason;
  return false;
}

GuestArena::Layout SmallLayout() {
  GuestArena::Layout layout;
  layout.arena_bytes = 2ull << 20;
  layout.stack_bytes = 256 * 1024;
  layout.guard_bytes = 16 * kPageSize;
  return layout;
}

SnapshotEngine::Env MakeEnv(GuestArena* arena, PageStore* store, SnapshotEngineStats* stats,
                            uint32_t hot_page_limit) {
  SnapshotEngine::Env env;
  env.arena = arena;
  env.store = store;
  env.stats = stats;
  env.page_map_kind = PageMapKind::kRadix;
  env.hot_page_limit = hot_page_limit;
  env.owner = 1;
  return env;
}

// One round of deterministic page content: a spread of distinct fills plus a
// page repeated across rounds (so restores cross both fresh and deduped blobs).
void WriteRound(GuestArena& arena, int round) {
  for (uint32_t page = 1; page <= 80; ++page) {
    std::memset(arena.PageAddr(page), static_cast<int>((page * 7 + round * 13) & 0xFF),
                kPageSize);
  }
  std::memset(arena.PageAddr(90), 0x55, kPageSize);
  std::memset(arena.PageAddr(92), static_cast<int>(round), kPageSize);
}

// Guest-write stand-in between restores: dirties a few scattered runs so each
// restore has live divergence on top of the map diff. Under CoW these writes
// fault on the calling thread (the engine ctor installed its sigaltstack).
void Scribble(GuestArena& arena, int salt) {
  for (uint32_t page : {5u, 6u, 7u, 50u, 83u, 84u}) {
    std::memset(arena.PageAddr(page), static_cast<int>((page + salt) & 0xFF), kPageSize);
  }
}

struct RestoreRun {
  std::vector<uint8_t> image;  // non-guard arena bytes after the script
  SnapshotEngineStats stats;
};

// Runs the same materialize/scribble/restore script against a fresh arena +
// store + engine, fanning both directions over a team of `workers` threads
// (0 = the serial forwarding overload, no team at all).
RestoreRun RunRestoreScript(SnapshotMode mode, uint32_t workers) {
  PageStore store;
  GuestArena arena(SmallLayout());
  SnapshotEngineStats stats;
  auto engine = MakeSnapshotEngine(mode, MakeEnv(&arena, &store, &stats, 16));

  std::unique_ptr<ParallelMaterializer> team;
  MaterializeContext mctx;
  RestoreContext rctx;
  if (workers > 0) {
    ParallelMaterializerOptions options;
    options.workers = workers;
    options.chunk_slots = 8;  // small chunks so even small restore sets fan out
    options.needs_signal_stack = engine->NeedsSignalProtocol();
    team = std::make_unique<ParallelMaterializer>(options);
    mctx.parallel = team.get();
    rctx.parallel = team.get();
  }

  std::vector<Snapshot> snaps(6);
  for (int round = 0; round < 6; ++round) {
    WriteRound(arena, round);
    engine->Materialize(snaps[round], mctx);
  }
  // Backtrack shape: live writes, jump down the tree, live writes, jump
  // further down, then forward again — exercising dirty-set restores, map-diff
  // restores, and (CoW) hot-page compares in one script.
  Scribble(arena, 101);
  engine->Restore(snaps[3], rctx);
  Scribble(arena, 202);
  engine->Restore(snaps[1], rctx);
  engine->Restore(snaps[5], rctx);

  RestoreRun run;
  run.stats = stats;
  run.image.reserve(static_cast<size_t>(arena.num_pages()) * kPageSize);
  for (uint32_t page = 0; page < arena.num_pages(); ++page) {
    if (arena.InGuard(page)) {
      continue;  // PROT_NONE forever; never part of any snapshot
    }
    const uint8_t* src = arena.PageAddr(page);
    run.image.insert(run.image.end(), src, src + kPageSize);
  }
  return run;
}

class RestoreParityTest : public ::testing::TestWithParam<SnapshotMode> {};

TEST_P(RestoreParityTest, WorkerSweepMatchesSerialBitForBit) {
  const char* reason = nullptr;
  if (SkipForMode(GetParam(), &reason)) {
    GTEST_SKIP() << reason;
  }
  const RestoreRun serial = RunRestoreScript(GetParam(), 0);
  for (uint32_t workers : {1u, 2u, 4u, 8u}) {
    const RestoreRun parallel = RunRestoreScript(GetParam(), workers);
    ASSERT_EQ(serial.image.size(), parallel.image.size());
    EXPECT_EQ(std::memcmp(serial.image.data(), parallel.image.data(), serial.image.size()), 0)
        << "post-restore memory diverged at workers=" << workers;
    EXPECT_EQ(parallel.stats.pages_restored, serial.stats.pages_restored)
        << "workers=" << workers;
    EXPECT_EQ(parallel.stats.pages_restore_skipped, serial.stats.pages_restore_skipped)
        << "workers=" << workers;
    // Protection batching happens on the session thread before/after the
    // fan-out, so its accounting must be invariant in the worker count too.
    EXPECT_EQ(parallel.stats.restore_runs_coalesced, serial.stats.restore_runs_coalesced)
        << "workers=" << workers;
    EXPECT_EQ(parallel.stats.restore_mprotect_calls, serial.stats.restore_mprotect_calls)
        << "workers=" << workers;
  }
  // Engines that batch protection pay exactly two syscalls per coalesced run;
  // fault-free engines pay none at all.
  EXPECT_LE(serial.stats.restore_mprotect_calls, 2 * serial.stats.restore_runs_coalesced);
  if (GetParam() == SnapshotMode::kCow) {
    EXPECT_GT(serial.stats.restore_runs_coalesced, 0u);
    EXPECT_EQ(serial.stats.restore_mprotect_calls, 2 * serial.stats.restore_runs_coalesced);
  }
  if (GetParam() == SnapshotMode::kFullCopy || GetParam() == SnapshotMode::kIncremental ||
      GetParam() == SnapshotMode::kSoftDirty) {
    EXPECT_EQ(serial.stats.restore_mprotect_calls, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllEngines, RestoreParityTest,
                         ::testing::Values(SnapshotMode::kCow, SnapshotMode::kFullCopy,
                                           SnapshotMode::kIncremental, SnapshotMode::kSoftDirty,
                                           SnapshotMode::kAdaptive),
                         [](const ::testing::TestParamInfo<SnapshotMode>& info) {
                           return SnapshotModeName(info.param);
                         });

// --- Syscall coalescing ----------------------------------------------------------

// A 16-page delta spread over 3 contiguous runs must cost exactly 2·3 mprotect
// calls — the per-page path this replaces paid 2 per page (32). Hot pages are
// disabled so the whole delta goes through the protected-set path.
TEST(CowRestoreCoalescingTest, DeltaOverThreeRunsCostsTwoSyscallsPerRun) {
#ifdef __SANITIZE_THREAD__
  GTEST_SKIP() << "CoW SIGSEGV protocol conflicts with TSan signal interposition";
#endif
  PageStore store;
  GuestArena arena(SmallLayout());
  SnapshotEngineStats stats;
  auto engine = MakeSnapshotEngine(SnapshotMode::kCow, MakeEnv(&arena, &store, &stats, 0));

  Snapshot base;
  engine->Materialize(base);  // all-zero baseline

  std::vector<uint32_t> delta;
  for (uint32_t page = 10; page <= 19; ++page) delta.push_back(page);
  for (uint32_t page = 40; page <= 44; ++page) delta.push_back(page);
  delta.push_back(100);
  for (uint32_t page : delta) {
    std::memset(arena.PageAddr(page), 0xAB, kPageSize);  // faults, marks dirty
  }

  engine->Restore(base);
  EXPECT_EQ(stats.restore_runs_coalesced, 3u);
  EXPECT_EQ(stats.restore_mprotect_calls, 6u);
  EXPECT_EQ(stats.pages_restored, delta.size());
  for (uint32_t page : delta) {
    EXPECT_EQ(arena.PageAddr(page)[0], 0u) << "page " << page << " not rolled back";
  }

  // A restore with nothing to do must not issue any protection syscalls.
  engine->Restore(base);
  EXPECT_EQ(stats.restore_runs_coalesced, 3u);
  EXPECT_EQ(stats.restore_mprotect_calls, 6u);
  EXPECT_EQ(stats.pages_restored, delta.size());
}

// --- Hot-page skip ---------------------------------------------------------------

TEST(CowRestoreHotSkipTest, UnchangedHotPagesAreComparedNotCopied) {
#ifdef __SANITIZE_THREAD__
  GTEST_SKIP() << "CoW SIGSEGV protocol conflicts with TSan signal interposition";
#endif
  PageStore store;
  GuestArena arena(SmallLayout());
  SnapshotEngineStats stats;
  auto engine = MakeSnapshotEngine(SnapshotMode::kCow, MakeEnv(&arena, &store, &stats, 8));

  // Page 10 dirtied every round goes hot after kHotPromoteAfter consecutive
  // dirty snapshots.
  std::vector<Snapshot> snaps(6);
  for (int round = 0; round < 6; ++round) {
    std::memset(arena.PageAddr(10), round + 1, kPageSize);
    engine->Materialize(snaps[round]);
  }
  ASSERT_GT(stats.hot_promotions, 0u);

  // Live memory already equals snaps[5]; the hot page is memcmp'd and skipped.
  const uint64_t restored_before = stats.pages_restored;
  engine->Restore(snaps[5]);
  EXPECT_EQ(stats.pages_restored, restored_before);
  EXPECT_GE(stats.pages_restore_skipped, 1u);

  // Restoring down the chain must copy the (now divergent) hot page.
  engine->Restore(snaps[0]);
  EXPECT_EQ(stats.pages_restored, restored_before + 1);
  EXPECT_EQ(arena.PageAddr(10)[0], 1u);
}

}  // namespace
}  // namespace lw
