#!/usr/bin/env python3
"""Perf-regression gate over Google Benchmark JSON output.

Merges one or more --benchmark_format=json result files into a single
BENCH_ci.json (the CI artifact) and compares every benchmark present in both
the merged results and a checked-in baseline, failing on regressions beyond a
threshold.

CI runners and developer machines differ in absolute speed, so by default the
comparison is *shape-based*: each per-row ratio (current/baseline) is divided
by the geometric mean of all common rows' ratios, cancelling any uniform
machine-speed factor. A single row regressing R% while the rest hold still
shows ~R% after normalization (damped by R^(1/N) through the geomean — with
the ~10 gated rows a 25%% single-row regression still reads as ~22%%).
Pass --no-normalize for raw time comparison on a pinned machine.

Rows are matched by run_name; with --benchmark_repetitions the median
aggregate is used, otherwise the mean of the repeated entries. cpu_time is
compared (process CPU for the threaded rows — stabler than wall clock on
shared runners); times are unit-converted before comparison.

Usage:
  check_regression.py --baseline bench/baseline.json --output BENCH_ci.json \
      [--max-regression-pct 25] [--no-normalize] result.json [result2.json ...]
  check_regression.py --write-baseline bench/baseline.json result.json [...]
"""

import argparse
import json
import math
import sys

TIME_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_benchmarks(path):
    with open(path) as f:
        data = json.load(f)
    return data


def merge(results):
    merged = {"context": results[0].get("context", {}), "benchmarks": []}
    for data in results:
        merged["benchmarks"].extend(data.get("benchmarks", []))
    return merged


def sanitize(obj):
    """NaN/Inf → null: Google Benchmark emits NaN cv aggregates for
    zero-variance counters, and bare NaN is not valid JSON (RFC 8259) — a
    strict consumer of the artifact would reject the whole file."""
    if isinstance(obj, float) and not math.isfinite(obj):
        return None
    if isinstance(obj, dict):
        return {k: sanitize(v) for k, v in obj.items()}
    if isinstance(obj, list):
        return [sanitize(v) for v in obj]
    return obj


def metric_ns(entry):
    """cpu_time in ns (fallback real_time), unit-converted."""
    scale = TIME_UNIT_NS.get(entry.get("time_unit", "ns"), 1.0)
    value = entry.get("cpu_time", entry.get("real_time"))
    return None if value is None else value * scale


def representative_times(data):
    """run_name -> representative time in ns.

    Median aggregates win when present (repetitions mode); otherwise repeated
    iteration entries for one run_name are averaged.
    """
    medians = {}
    sums = {}
    counts = {}
    for entry in data.get("benchmarks", []):
        if entry.get("error_occurred"):
            continue
        name = entry.get("run_name", entry.get("name"))
        value = metric_ns(entry)
        if name is None or value is None:
            continue
        if entry.get("run_type") == "aggregate":
            if entry.get("aggregate_name") == "median":
                medians[name] = value
            continue
        sums[name] = sums.get(name, 0.0) + value
        counts[name] = counts.get(name, 0) + 1
    times = {name: sums[name] / counts[name] for name in sums}
    times.update(medians)
    return times


def fmt_ns(ns):
    for unit, div in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if ns >= div:
            return f"{ns / div:.2f}{unit}"
    return f"{ns:.0f}ns"


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("results", nargs="+", help="benchmark JSON result files")
    parser.add_argument("--baseline", help="checked-in baseline JSON to gate against")
    parser.add_argument("--output", help="write merged results here (the CI artifact)")
    parser.add_argument("--write-baseline", metavar="PATH",
                        help="seed/refresh the baseline from these results and exit")
    parser.add_argument("--max-regression-pct", type=float, default=25.0)
    parser.add_argument("--no-normalize", action="store_true",
                        help="compare raw times (pinned-machine mode)")
    parser.add_argument("--optional-prefix", action="append", default=[],
                        metavar="PREFIX",
                        help="rows whose run_name starts with PREFIX are "
                             "host-capability-dependent (e.g. soft-dirty rows "
                             "exist only on kernels with CONFIG_MEM_SOFT_DIRTY): "
                             "missing/ungated mismatches warn instead of fail; "
                             "rows present on both sides still gate normally")
    args = parser.parse_args()

    def is_optional(name):
        return any(name.startswith(p) for p in args.optional_prefix)

    results = [load_benchmarks(path) for path in args.results]
    merged = merge(results)

    if args.write_baseline:
        with open(args.write_baseline, "w") as f:
            json.dump(sanitize(merged), f, indent=1, sort_keys=True, allow_nan=False)
            f.write("\n")
        print(f"baseline written: {args.write_baseline} "
              f"({len(representative_times(merged))} rows)")
        return 0

    if args.output:
        with open(args.output, "w") as f:
            json.dump(sanitize(merged), f, indent=1, sort_keys=True, allow_nan=False)
            f.write("\n")

    if not args.baseline:
        parser.error("--baseline (or --write-baseline) is required")
    baseline = representative_times(load_benchmarks(args.baseline))
    current = representative_times(merged)
    common = sorted(set(baseline) & set(current))
    if not common:
        print("error: no benchmarks in common with the baseline — "
              "filters and baseline are out of sync", file=sys.stderr)
        return 2
    # A gated row that errored (e.g. a SkipWithError parity violation — Google
    # Benchmark still exits 0) or silently fell out of the run must fail the
    # gate, not shrink it: a missing row is indistinguishable from an infinite
    # regression.
    errored = sorted({e.get("run_name", e.get("name")) for e in merged["benchmarks"]
                      if e.get("error_occurred")})
    if errored:
        print(f"error: {len(errored)} benchmark rows reported errors: "
              f"{', '.join(errored)}", file=sys.stderr)
        return 2
    missing = sorted(set(baseline) - set(current))
    missing_optional = [name for name in missing if is_optional(name)]
    missing = [name for name in missing if not is_optional(name)]
    if missing_optional:
        print(f"warning: {len(missing_optional)} optional baseline rows absent "
              f"from this run (host capability not present here): "
              f"{', '.join(missing_optional)}", file=sys.stderr)
    if missing:
        print(f"error: {len(missing)} baseline rows absent from this run "
              f"(filters and baseline out of sync?): {', '.join(missing)}",
              file=sys.stderr)
        return 2
    ungated = sorted(set(current) - set(baseline))
    ungated_optional = [name for name in ungated if is_optional(name)]
    ungated = [name for name in ungated if not is_optional(name)]
    if ungated_optional:
        print(f"warning: {len(ungated_optional)} optional rows in this run "
              f"have no baseline (baseline was seeded on a host without the "
              f"capability) and are not gated: {', '.join(ungated_optional)}",
              file=sys.stderr)
    if ungated:
        print(f"error: {len(ungated)} rows in this run have no baseline and "
              f"would be silently ungated — reseed (run_perf_smoke.sh --seed): "
              f"{', '.join(ungated)}", file=sys.stderr)
        return 2

    ratios = {name: current[name] / baseline[name] for name in common}
    factor = 1.0
    if not args.no_normalize:
        factor = math.exp(sum(math.log(r) for r in ratios.values()) / len(ratios))
        print(f"machine-speed normalization factor (geomean current/baseline): "
              f"{factor:.3f}")
        if not 0.5 <= factor <= 1.5:
            # Normalization deliberately cancels uniform shifts (machine speed
            # — but also a regression that slows every gated row alike, e.g.
            # in the shared PageStore publish path). A big factor deserves a
            # loud line so a human can tell the two apart.
            print(f"warning: uniform shift of {factor:.2f}x vs baseline — "
                  "machine-speed difference or an across-the-board "
                  "regression/improvement; inspect the raw ratio column",
                  file=sys.stderr)

    limit = 1.0 + args.max_regression_pct / 100.0
    failures = []
    width = max(len(name) for name in common)
    print(f"{'benchmark':<{width}}  {'baseline':>10}  {'current':>10}  "
          f"{'ratio':>6}  {'norm':>6}")
    for name in common:
        norm = ratios[name] / factor
        verdict = ""
        if norm > limit:
            verdict = f"  REGRESSION >{args.max_regression_pct:.0f}%"
            failures.append(name)
        print(f"{name:<{width}}  {fmt_ns(baseline[name]):>10}  "
              f"{fmt_ns(current[name]):>10}  {ratios[name]:>6.3f}  {norm:>6.3f}"
              f"{verdict}")

    if failures:
        print(f"\nFAIL: {len(failures)} of {len(common)} gated rows regressed "
              f"beyond {args.max_regression_pct:.0f}%: {', '.join(failures)}",
              file=sys.stderr)
        print("If intentional (algorithmic trade-off), refresh the baseline: "
              "bench/run_perf_smoke.sh <build-dir> --seed", file=sys.stderr)
        return 1
    print(f"\nOK: {len(common)} gated rows within {args.max_regression_pct:.0f}% "
          "of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
