// E2 — snapshot/restore primitive costs vs the classic alternatives.
//
// The Dune paper (and §4 here) claims an order of magnitude over Linux
// process abstractions for memory-protection-heavy operations. Rows:
//
//   CowSnapshot/D/A        — CoW engine, D pages dirtied per snapshot, A MiB
//                            arena: cost ∝ dirty pages, independent of arena size
//   FullCopySnapshot/A     — classic checkpoint [libckpt]: cost ∝ arena size
//   IncrementalSnapshot/D/A — fault-free scan engine: reads ∝ arena, copies ∝
//                            dirty pages (no mprotect traffic at all)
//   ForkSnapshot/D         — fork+dirty+exit+wait per "snapshot" (the §3 strawman)
//   SoftDirtySnapshot/D/A  — kernel-assisted engine (soft-dirty pagemap bits):
//                            no faults, no scan; registered only when the host
//                            kernel supports soft-dirty (see the probe below)
//   AdaptiveSnapshot/D/A   — per-checkpoint mechanism selection from observed
//                            dirty rate; should track the best fixed engine
//   {Cow,Incremental,FullCopy,Adaptive,SoftDirty}Restore/D/A/W — restore-heavy
//                            shape (fanout restores per snapshot) with a
//                            W-thread worker team; reports ns/restore and the
//                            mprotect-coalescing counters (E13)
//   {Cow,Incremental,Adaptive}ReleaseStorm/N/B — N-sibling checkpoint release
//                            storm, timed on the release phase only; B=1
//                            reclaims through the O(spine) walk +
//                            PageStore::ReleaseBatch, B=0 is the per-ref
//                            baseline (E14)
//
// Counters report the engine's own ns/snapshot and ns/restore so the
// comparison is invariant to the harness loop; the label column names the
// engine (SnapshotModeName) plus the dirty-discovery mechanism the last
// checkpoint used (dirty_src=faults|scan|kernel-pagemap|full), so rows are
// comparable across all backends and the adaptive engine's choice is visible.
//
// `--lwsnap_probe_soft_dirty`: exits 0 if the kernel supports soft-dirty
// tracking, 2 if not (reason on stderr) — used by bench/run_perf_smoke.sh and
// CI to decide whether SoftDirtySnapshot rows exist on this host.

#include <benchmark/benchmark.h>

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/core/backtrack.h"
#include "src/snapshot/soft_dirty.h"

namespace {

struct DirtyArgs {
  uint32_t dirty_pages = 1;
  uint32_t rounds = 64;
};

// Guest: each round dirties `dirty_pages` distinct pages of a large guest
// buffer, then guesses over a single extension — forcing one snapshot and one
// restore per round with a precisely controlled dirty set.
void DirtyGuest(void* arg) {
  auto* args = static_cast<DirtyArgs*>(arg);
  auto* session = static_cast<lw::BacktrackSession*>(lw::CurrentExecutor());
  const size_t page = 4096;
  const size_t buffer_bytes = static_cast<size_t>(args->dirty_pages + 1) * page;
  auto* buffer = static_cast<uint8_t*>(session->heap()->Alloc(buffer_bytes));
  if (buffer == nullptr) {
    return;
  }
  if (!lw::sys_guess_strategy(lw::StrategyKind::kDfs)) {
    return;
  }
  for (uint32_t round = 0; round < args->rounds; ++round) {
    for (uint32_t p = 0; p < args->dirty_pages; ++p) {
      buffer[p * page + (round % page)] = static_cast<uint8_t>(round);
    }
    (void)lw::sys_guess(1);
  }
}

void RunEngine(benchmark::State& state, lw::SnapshotMode mode, uint32_t workers = 0) {
  DirtyArgs args;
  args.dirty_pages = static_cast<uint32_t>(state.range(0));
  size_t arena_mb = static_cast<size_t>(state.range(1));
  lw::DirtySource dirty_source = lw::DirtySource::kFull;

  uint64_t snap_ns = 0;
  uint64_t restore_ns = 0;
  uint64_t snapshots = 0;
  uint64_t pages = 0;
  uint64_t resident_bytes = 0;
  uint64_t dedup_hits = 0;
  uint64_t compressed_blobs = 0;
  for (auto _ : state) {
    lw::SessionOptions options;
    options.arena_bytes = arena_mb << 20;
    options.snapshot_mode = mode;
    options.parallel_materialize_workers = workers;
    options.output = [](std::string_view) {};
    lw::BacktrackSession session(options);
    lw::Status status = session.Run(&DirtyGuest, &args);
    if (!status.ok()) {
      state.SkipWithError(status.ToString().c_str());
      return;
    }
    snap_ns = session.stats().snapshot_ns;
    restore_ns = session.stats().restore_ns;
    snapshots = session.stats().snapshots;
    pages = session.stats().pages_materialized;
    dirty_source = session.stats().dirty_source;
    const lw::PageStore::Stats& store = session.store().stats();
    resident_bytes = store.bytes_resident();
    dedup_hits = store.zero_dedup_hits + store.content_dedup_hits;
    compressed_blobs = store.compressed_blobs;
  }
  state.SetLabel(std::string(lw::SnapshotModeName(mode)) + " dirty_src=" +
                 lw::DirtySourceName(dirty_source));
  if (snapshots != 0) {
    state.counters["ns/snapshot"] = static_cast<double>(snap_ns) / snapshots;
    state.counters["ns/restore"] = static_cast<double>(restore_ns) / snapshots;
    state.counters["pages/snapshot"] = static_cast<double>(pages) / snapshots;
    state.counters["resident_bytes"] = static_cast<double>(resident_bytes);
    state.counters["dedup_hits"] = static_cast<double>(dedup_hits);
    state.counters["compressed_blobs"] = static_cast<double>(compressed_blobs);
  }
}

void BM_CowSnapshot(benchmark::State& state) { RunEngine(state, lw::SnapshotMode::kCow); }
BENCHMARK(BM_CowSnapshot)
    ->Args({1, 16})
    ->Args({8, 16})
    ->Args({64, 16})
    ->Args({512, 16})
    ->Args({1, 64})
    ->Args({8, 64})
    ->Args({64, 64})
    ->Args({512, 64})
    ->Unit(benchmark::kMillisecond);

void BM_FullCopySnapshot(benchmark::State& state) {
  RunEngine(state, lw::SnapshotMode::kFullCopy);
}
// One iteration each: whole-arena copies are the point being demonstrated, and
// a 64 MiB arena pays for it on every one of the 64 rounds.
BENCHMARK(BM_FullCopySnapshot)
    ->Args({8, 16})
    ->Args({8, 64})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_IncrementalSnapshot(benchmark::State& state) {
  RunEngine(state, lw::SnapshotMode::kIncremental);
}
// Same rows as CoW: the scan engine's snapshot cost has a ∝-arena read term
// plus a ∝-dirty copy term, so both axes matter.
BENCHMARK(BM_IncrementalSnapshot)
    ->Args({1, 16})
    ->Args({8, 16})
    ->Args({64, 16})
    ->Args({512, 16})
    ->Args({1, 64})
    ->Args({8, 64})
    ->Args({64, 64})
    ->Args({512, 64})
    ->Unit(benchmark::kMillisecond);

// E11 — the same engines with the session's parallel-materialize worker team
// (ROADMAP: "publish the dirty set with multiple threads"). Args are
// {dirty_pages, arena_mb, workers}; rows are comparable against the serial
// families above at the same first two args. Fat dirty sets (512 pages) are
// the regime where fanning the publish loop out pays; the incremental rows
// additionally parallelize the ∝-arena content scan.
void BM_CowSnapshotParallel(benchmark::State& state) {
  RunEngine(state, lw::SnapshotMode::kCow, static_cast<uint32_t>(state.range(2)));
}
BENCHMARK(BM_CowSnapshotParallel)
    ->Args({512, 16, 1})
    ->Args({512, 16, 2})
    ->Args({512, 16, 4})
    ->Args({512, 16, 8})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

void BM_IncrementalSnapshotParallel(benchmark::State& state) {
  RunEngine(state, lw::SnapshotMode::kIncremental, static_cast<uint32_t>(state.range(2)));
}
BENCHMARK(BM_IncrementalSnapshotParallel)
    ->Args({512, 16, 1})
    ->Args({512, 16, 2})
    ->Args({512, 16, 4})
    ->Args({512, 16, 8})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

void BM_FullCopySnapshotParallel(benchmark::State& state) {
  RunEngine(state, lw::SnapshotMode::kFullCopy, static_cast<uint32_t>(state.range(2)));
}
BENCHMARK(BM_FullCopySnapshotParallel)
    ->Args({8, 16, 1})
    ->Args({8, 16, 4})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

// E12 — the adaptive engine over the same grid as the fixed engines. Its
// acceptance bar: within ~10% of the best fixed engine at every point (the
// label shows which mechanism it settled on).
void BM_AdaptiveSnapshot(benchmark::State& state) {
  RunEngine(state, lw::SnapshotMode::kAdaptive);
}
BENCHMARK(BM_AdaptiveSnapshot)
    ->Args({1, 16})
    ->Args({8, 16})
    ->Args({64, 16})
    ->Args({512, 16})
    ->Args({1, 64})
    ->Args({8, 64})
    ->Args({64, 64})
    ->Args({512, 64})
    ->Unit(benchmark::kMillisecond);

// E12 — kernel-assisted rows. Not BENCHMARK()-registered: main() below adds
// them only when the host kernel actually tracks soft-dirty bits, so filter
// scripts can probe first instead of parsing skip errors.
void BM_SoftDirtySnapshot(benchmark::State& state) {
  RunEngine(state, lw::SnapshotMode::kSoftDirty);
}

// E13 — restore-heavy rows (the backtrack half). Args are {dirty_pages,
// arena_mb, workers}. The guest snapshots once per round and then takes
// `fanout` restores off that node, each rolling back a freshly dirtied
// D-page window — restores dominate the session (fanout× more restores than
// snapshots), which is the shape deep symx chains and checkpoint-per-revision
// bisection produce. Counters report the engine's own ns/restore plus the
// syscall-coalescing provenance (mprotect and runs per restore, compare
// skips), so the O(runs)-vs-O(pages) claim is measured, not inferred.
struct RestoreArgs {
  uint32_t dirty_pages = 64;
  uint32_t rounds = 16;
  uint32_t fanout = 8;
};

void RestoreHeavyGuest(void* arg) {
  auto* args = static_cast<RestoreArgs*>(arg);
  auto* session = static_cast<lw::BacktrackSession*>(lw::CurrentExecutor());
  const size_t page = 4096;
  const size_t buffer_bytes = static_cast<size_t>(args->dirty_pages + 1) * page;
  auto* buffer = static_cast<uint8_t*>(session->heap()->Alloc(buffer_bytes));
  if (buffer == nullptr) {
    return;
  }
  if (!lw::sys_guess_strategy(lw::StrategyKind::kDfs)) {
    return;
  }
  for (uint32_t round = 0; round < args->rounds; ++round) {
    const uint32_t v = static_cast<uint32_t>(lw::sys_guess(args->fanout));
    for (uint32_t p = 0; p < args->dirty_pages; ++p) {
      buffer[p * page + ((round * 31 + v * 7) % page)] = static_cast<uint8_t>(round + v + 1);
    }
    if (v + 1 != args->fanout) {
      lw::sys_guess_fail();  // every failed branch is one restore of ~D pages
    }
  }
}

void RunRestoreEngine(benchmark::State& state, lw::SnapshotMode mode, uint32_t rounds,
                      uint32_t fanout) {
  RestoreArgs args;
  args.dirty_pages = static_cast<uint32_t>(state.range(0));
  args.rounds = rounds;
  args.fanout = fanout;
  size_t arena_mb = static_cast<size_t>(state.range(1));
  lw::DirtySource dirty_source = lw::DirtySource::kFull;

  uint64_t restore_ns = 0;
  uint64_t restores = 0;
  uint64_t pages_restored = 0;
  uint64_t mprotect_calls = 0;
  uint64_t runs = 0;
  uint64_t skips = 0;
  for (auto _ : state) {
    lw::SessionOptions options;
    options.arena_bytes = arena_mb << 20;
    options.snapshot_mode = mode;
    options.parallel_materialize_workers = static_cast<uint32_t>(state.range(2));
    options.output = [](std::string_view) {};
    lw::BacktrackSession session(options);
    lw::Status status = session.Run(&RestoreHeavyGuest, &args);
    if (!status.ok()) {
      state.SkipWithError(status.ToString().c_str());
      return;
    }
    restore_ns = session.stats().restore_ns;
    restores = session.stats().restores;
    pages_restored = session.stats().pages_restored;
    mprotect_calls = session.stats().restore_mprotect_calls;
    runs = session.stats().restore_runs_coalesced;
    skips = session.stats().pages_restore_skipped;
    dirty_source = session.stats().dirty_source;
  }
  state.SetLabel(std::string(lw::SnapshotModeName(mode)) + " dirty_src=" +
                 lw::DirtySourceName(dirty_source));
  if (restores != 0) {
    state.counters["ns/restore"] = static_cast<double>(restore_ns) / restores;
    state.counters["pages/restore"] = static_cast<double>(pages_restored) / restores;
    state.counters["mprotect/restore"] = static_cast<double>(mprotect_calls) / restores;
    state.counters["runs/restore"] = static_cast<double>(runs) / restores;
    state.counters["restore_skips"] = static_cast<double>(skips);
  }
}

void BM_CowRestore(benchmark::State& state) {
  RunRestoreEngine(state, lw::SnapshotMode::kCow, 16, 8);
}
BENCHMARK(BM_CowRestore)
    ->Args({64, 16, 1})
    ->Args({64, 16, 4})
    ->Args({512, 16, 1})
    ->Args({512, 16, 4})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

void BM_IncrementalRestore(benchmark::State& state) {
  RunRestoreEngine(state, lw::SnapshotMode::kIncremental, 16, 8);
}
BENCHMARK(BM_IncrementalRestore)
    ->Args({512, 16, 1})
    ->Args({512, 16, 4})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

// Whole-arena copy-back per restore: one iteration pays rounds×fanout of them.
void BM_FullCopyRestore(benchmark::State& state) {
  RunRestoreEngine(state, lw::SnapshotMode::kFullCopy, 8, 4);
}
BENCHMARK(BM_FullCopyRestore)
    ->Args({8, 16, 1})
    ->Args({8, 16, 4})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

void BM_AdaptiveRestore(benchmark::State& state) {
  RunRestoreEngine(state, lw::SnapshotMode::kAdaptive, 16, 8);
}
BENCHMARK(BM_AdaptiveRestore)
    ->Args({64, 16, 1})
    ->Args({64, 16, 4})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

// Registered in main() alongside BM_SoftDirtySnapshot, capability-gated.
void BM_SoftDirtyRestore(benchmark::State& state) {
  RunRestoreEngine(state, lw::SnapshotMode::kSoftDirty, 16, 8);
}

// E14 — release-storm rows (the teardown half of the snapshot lifecycle).
// Args are {num_checkpoints, batched}. The guest parks at a root checkpoint;
// the host forks `num_checkpoints` sibling checkpoints off it, each with a
// unique 64-page dirty delta (unique content per page, so none of it dedups
// away and every sibling's delta dies with its release), then releases every
// handle at once — the storm.
// Only the release phase is timed (manual time). batched=1 reclaims each
// snapshot through the O(spine) walk + PageStore::ReleaseBatch (one shard-lock
// hold per shard touched per batch); batched=0 is the per-ref baseline (every
// dying blob takes its shard lock individually). Counters surface the batch
// provenance: rel_batches / rel_blobs (blobs recycled through batches) /
// rel_locks (shard-lock holds those batches paid).
struct ReleaseStormArgs {
  uint32_t window_pages = 256;
  uint32_t dirty_pages = 64;  // per checkpoint delta — the D of the O(D·log) walk
};

void ReleaseStormGuest(void* arg) {
  auto* args = static_cast<ReleaseStormArgs*>(arg);
  auto* session = static_cast<lw::BacktrackSession*>(lw::CurrentExecutor());
  const size_t page = 4096;
  const size_t buffer_bytes = static_cast<size_t>(args->window_pages) * page;
  auto* buffer = static_cast<uint8_t*>(session->heap()->Alloc(buffer_bytes));
  auto* mailbox = static_cast<char*>(session->heap()->Alloc(32));
  if (buffer == nullptr || mailbox == nullptr) {
    return;
  }
  std::memset(buffer, 1, buffer_bytes);
  int round = 0;
  for (;;) {
    std::snprintf(mailbox, 32, "r=%d", round);
    size_t len = lw::sys_yield(mailbox, 32);
    if (len == 0) {
      return;
    }
    round += std::atoi(mailbox);
    for (uint32_t p = 0; p < args->dirty_pages; ++p) {
      uint8_t* dst =
          buffer + static_cast<size_t>((static_cast<uint32_t>(round) * args->dirty_pages + p) %
                                       args->window_pages) *
                       page;
      std::memset(dst, (round * 31 + static_cast<int>(p)) & 0xFF, page);
      // Stamp (round, p) verbatim so no two dirtied pages ever share content —
      // dedup would otherwise collapse sibling deltas and shrink the storm.
      std::memcpy(dst, &round, sizeof(round));
      std::memcpy(dst + sizeof(round), &p, sizeof(p));
    }
  }
}

void RunReleaseStorm(benchmark::State& state, lw::SnapshotMode mode) {
  const int num_checkpoints = static_cast<int>(state.range(0));
  const bool batched = state.range(1) != 0;
  ReleaseStormArgs args;

  uint64_t rel_batches = 0;
  uint64_t rel_blobs = 0;
  uint64_t rel_locks = 0;
  uint64_t released = 0;
  for (auto _ : state) {
    lw::SessionOptions options;
    options.arena_bytes = 16ull << 20;
    options.snapshot_mode = mode;
    options.batched_release = batched;
    options.output = [](std::string_view) {};
    lw::BacktrackSession session(options);
    lw::Status status = session.Run(&ReleaseStormGuest, &args);
    if (!status.ok()) {
      state.SkipWithError(status.ToString().c_str());
      return;
    }
    auto tokens = session.TakeNewCheckpoints();
    if (tokens.size() != 1) {
      state.SkipWithError("expected one root checkpoint");
      return;
    }
    lw::Checkpoint root = std::move(tokens[0]);
    std::vector<lw::Checkpoint> siblings;
    siblings.reserve(static_cast<size_t>(num_checkpoints));
    for (int i = 0; i < num_checkpoints; ++i) {
      const std::string msg = std::to_string(i + 1);  // unique delta per sibling
      status = session.Resume(root, msg.c_str(), msg.size() + 1);
      if (!status.ok()) {
        state.SkipWithError(status.ToString().c_str());
        return;
      }
      auto next = session.TakeNewCheckpoints();
      if (next.size() != 1) {
        state.SkipWithError("expected one checkpoint per resume");
        return;
      }
      siblings.push_back(std::move(next[0]));
    }
    // The storm: release every sibling, then the root — timed on its own.
    const auto start = std::chrono::steady_clock::now();
    while (!siblings.empty()) {
      (void)session.ReleaseCheckpoint(siblings.back());
      siblings.pop_back();
    }
    (void)session.ReleaseCheckpoint(root);
    const auto end = std::chrono::steady_clock::now();
    state.SetIterationTime(std::chrono::duration<double>(end - start).count());
    released += static_cast<uint64_t>(num_checkpoints) + 1;
    const lw::PageStore::Stats& store = session.store().stats();
    rel_batches = store.release_batches;
    rel_blobs = store.blobs_recycled_batched;
    rel_locks = store.release_shard_locks;
  }
  state.SetLabel(std::string(lw::SnapshotModeName(mode)) +
                 (batched ? " release=batched" : " release=per-ref"));
  if (released != 0) {
    state.counters["releases"] = static_cast<double>(released);
    state.counters["rel_batches"] = static_cast<double>(rel_batches);
    state.counters["rel_blobs"] = static_cast<double>(rel_blobs);
    state.counters["rel_locks"] = static_cast<double>(rel_locks);
  }
}

void BM_CowReleaseStorm(benchmark::State& state) {
  RunReleaseStorm(state, lw::SnapshotMode::kCow);
}
BENCHMARK(BM_CowReleaseStorm)
    ->Args({64, 0})
    ->Args({64, 1})
    ->Iterations(10)
    ->Unit(benchmark::kMicrosecond)
    ->UseManualTime();

void BM_IncrementalReleaseStorm(benchmark::State& state) {
  RunReleaseStorm(state, lw::SnapshotMode::kIncremental);
}
BENCHMARK(BM_IncrementalReleaseStorm)
    ->Args({64, 0})
    ->Args({64, 1})
    ->Iterations(10)
    ->Unit(benchmark::kMicrosecond)
    ->UseManualTime();

void BM_AdaptiveReleaseStorm(benchmark::State& state) {
  RunReleaseStorm(state, lw::SnapshotMode::kAdaptive);
}
BENCHMARK(BM_AdaptiveReleaseStorm)
    ->Args({64, 0})
    ->Args({64, 1})
    ->Iterations(10)
    ->Unit(benchmark::kMicrosecond)
    ->UseManualTime();

// The fork strawman: one fork()+dirty+_exit+waitpid cycle per "snapshot".
void BM_ForkSnapshot(benchmark::State& state) {
  uint32_t dirty_pages = static_cast<uint32_t>(state.range(0));
  const size_t page = 4096;
  static uint8_t* buffer = nullptr;
  const size_t buffer_bytes = 1024 * page;
  if (buffer == nullptr) {
    buffer = new uint8_t[buffer_bytes];
    std::memset(buffer, 1, buffer_bytes);
  }
  for (auto _ : state) {
    pid_t pid = fork();
    if (pid == 0) {
      for (uint32_t p = 0; p < dirty_pages; ++p) {
        buffer[p * page] = 2;  // CoW break in the child
      }
      _exit(0);
    }
    int wstatus = 0;
    waitpid(pid, &wstatus, 0);
  }
  state.counters["dirty_pages"] = dirty_pages;
}
BENCHMARK(BM_ForkSnapshot)->Arg(1)->Arg(8)->Arg(64)->Arg(512)->Iterations(200);

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--lwsnap_probe_soft_dirty") == 0) {
      lw::Status probe = lw::SoftDirtyTracker::Probe();
      std::fprintf(stderr, "soft-dirty: %s\n",
                   probe.ok() ? "supported" : probe.ToString().c_str());
      return probe.ok() ? 0 : 2;
    }
  }
  if (lw::SoftDirtyTracker::Supported()) {
    benchmark::RegisterBenchmark("BM_SoftDirtySnapshot", &BM_SoftDirtySnapshot)
        ->Args({1, 16})
        ->Args({8, 16})
        ->Args({64, 16})
        ->Args({512, 16})
        ->Args({1, 64})
        ->Args({8, 64})
        ->Args({64, 64})
        ->Args({512, 64})
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark("BM_SoftDirtyRestore", &BM_SoftDirtyRestore)
        ->Args({64, 16, 1})
        ->Args({64, 16, 4})
        ->Unit(benchmark::kMillisecond)
        ->UseRealTime()
        ->MeasureProcessCPUTime();
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
