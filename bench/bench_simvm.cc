// E9 — substrate-level page costs on the simulated MMU (§4):
//
// Dune's pitch (and this paper's dependence on it) is that nested paging makes
// address-space manipulation and CoW faults cheap but makes each TLB miss walk
// two page-table dimensions. The simulator makes those costs countable:
//
//   TranslateHot          — TLB-hit reads (the steady state)
//   TranslateCold/pages   — random touch over `pages` pages (walk-heavy);
//                           counters report 1-D vs 2-D walk references
//   CowBreak/pages        — write-after-clone fault+copy per page
//   SnapshotChurn/dirty   — SimSnapshotEngine snapshot→dirty→restore cycles
//
// Expected shape: 2-D walk refs ≈ (d+1)² - 1 = 24 per miss vs 4 for 1-D (the
// Bhargava et al. accounting); CoW cost ∝ pages written, not space size.

#include <benchmark/benchmark.h>

#include "src/simvm/address_space.h"
#include "src/simvm/sim_engine.h"
#include "src/util/rng.h"

namespace {

constexpr uint64_t kBase = 0x10000000;

void BM_TranslateHot(benchmark::State& state) {
  lwvm::PhysMem mem(1u << 16);
  lwvm::AddressSpace space(&mem);
  (void)space.MapRegion(kBase, 8, true);
  uint64_t value = 0;
  for (auto _ : state) {
    // Eight pages round-robin: all hits after the first walk.
    for (int p = 0; p < 8; ++p) {
      auto v = space.Read64(kBase + static_cast<uint64_t>(p) * 4096);
      value += v.ok() ? *v : 0;
    }
  }
  benchmark::DoNotOptimize(value);
  const auto& tlb = space.tlb().stats();
  state.counters["tlb_hit_ratio"] =
      static_cast<double>(tlb.hits) / static_cast<double>(tlb.hits + tlb.misses);
  state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_TranslateHot);

void BM_TranslateCold(benchmark::State& state) {
  uint64_t pages = static_cast<uint64_t>(state.range(0));
  lwvm::PhysMem mem(1u << 18);
  lwvm::AddressSpace space(&mem);
  (void)space.MapRegion(kBase, pages, true);
  lw::Rng rng(3);
  uint64_t value = 0;
  for (auto _ : state) {
    auto v = space.Read64(kBase + (rng.Next() % pages) * 4096);
    value += v.ok() ? *v : 0;
  }
  benchmark::DoNotOptimize(value);
  const auto& stats = space.stats();
  const auto& tlb = space.tlb().stats();
  state.counters["walk_refs_1d/walk"] =
      stats.walks != 0 ? static_cast<double>(stats.walk_refs_1d) / stats.walks : 0;
  state.counters["walk_refs_2d/walk"] =
      stats.walks != 0 ? static_cast<double>(stats.walk_refs_2d) / stats.walks : 0;
  state.counters["tlb_hit_ratio"] =
      static_cast<double>(tlb.hits) / static_cast<double>(tlb.hits + tlb.misses);
}
BENCHMARK(BM_TranslateCold)->Arg(16)->Arg(512)->Arg(16384);

void BM_CowBreak(benchmark::State& state) {
  uint64_t pages = static_cast<uint64_t>(state.range(0));
  uint64_t faults = 0;
  uint64_t copies = 0;
  for (auto _ : state) {
    state.PauseTiming();
    lwvm::PhysMem mem(1u << 18);
    lwvm::AddressSpace space(&mem);
    (void)space.MapRegion(kBase, pages, true);
    for (uint64_t p = 0; p < pages; ++p) {
      (void)space.Write64(kBase + p * 4096, p);  // materialize frames
    }
    auto clone = space.CowClone();
    if (!clone.ok()) {
      state.SkipWithError("clone failed");
      return;
    }
    state.ResumeTiming();

    for (uint64_t p = 0; p < pages; ++p) {
      (void)space.Write64(kBase + p * 4096, p + 1);  // CoW fault + frame copy
    }
    faults = space.stats().cow_faults;
    copies = space.stats().cow_copies;
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(pages));
  state.counters["cow_faults"] = static_cast<double>(faults);
  state.counters["cow_copies"] = static_cast<double>(copies);
}
BENCHMARK(BM_CowBreak)->Arg(16)->Arg(256)->Arg(4096);

void BM_SnapshotChurn(benchmark::State& state) {
  uint64_t dirty = static_cast<uint64_t>(state.range(0));
  lwvm::PhysMem mem(1u << 18);
  lwvm::SimSnapshotEngine engine(&mem);
  (void)engine.space().MapRegion(kBase, 4096, true);
  for (uint64_t p = 0; p < 4096; ++p) {
    (void)engine.space().Write64(kBase + p * 4096, p);
  }
  for (auto _ : state) {
    auto snap = engine.Snapshot();
    if (!snap.ok()) {
      state.SkipWithError("snapshot failed");
      return;
    }
    for (uint64_t p = 0; p < dirty; ++p) {
      (void)engine.space().Write64(kBase + p * 4096, p ^ 0xff);
    }
    (void)engine.Restore(*snap);
    (void)engine.Release(*snap);
  }
  state.counters["frames_in_use"] = static_cast<double>(mem.stats().frames_in_use);
}
BENCHMARK(BM_SnapshotChurn)->Arg(1)->Arg(64)->Arg(1024);

}  // namespace

BENCHMARK_MAIN();
