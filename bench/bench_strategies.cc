// E5 — flexible search strategies (§3.1): the same 8-puzzle guest scheduled by
// DFS, BFS, A*, SM-A*, IDDFS and Random. The strategy is pure policy — the
// guest program never changes — and A*'s goal-distance information flows
// through sys_guess_weighted, the paper's extended guess call.
//
// Expected shape: A* evaluates the fewest extensions and finds the optimal
// depth; BFS matches the depth at a much higher node count; SM-A* tracks A*
// under a bounded frontier; DFS finds deep non-optimal solutions.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <unordered_set>

#include "src/core/backtrack.h"
#include "src/util/rng.h"

namespace {

using BoardCode = uint64_t;

struct Puzzle {
  int cells[9];
  int depth;
};

BoardCode Encode(const int cells[9]) {
  BoardCode code = 0;
  for (int i = 0; i < 9; ++i) {
    code |= static_cast<BoardCode>(cells[i]) << (4 * i);
  }
  return code;
}

BoardCode GoalCode() {
  const int goal[9] = {1, 2, 3, 4, 5, 6, 7, 8, 0};
  return Encode(goal);
}

int BlankAt(const int cells[9]) {
  for (int i = 0; i < 9; ++i) {
    if (cells[i] == 0) {
      return i;
    }
  }
  return -1;
}

int Moves(int pos, int out[4]) {
  int n = 0;
  if (pos / 3 > 0) {
    out[n++] = pos - 3;
  }
  if (pos / 3 < 2) {
    out[n++] = pos + 3;
  }
  if (pos % 3 > 0) {
    out[n++] = pos - 1;
  }
  if (pos % 3 < 2) {
    out[n++] = pos + 1;
  }
  return n;
}

int Manhattan(const int cells[9]) {
  int total = 0;
  for (int i = 0; i < 9; ++i) {
    if (cells[i] == 0) {
      continue;
    }
    int goal = cells[i] - 1;
    total += std::abs(i / 3 - goal / 3) + std::abs(i % 3 - goal % 3);
  }
  return total;
}

struct HostSide {
  BoardCode start;
  lw::StrategyKind strategy;
  std::unordered_set<BoardCode>* closed;
  bool* solved;
  int* depth;
};

void PuzzleGuest(void* arg) {
  auto* host = static_cast<HostSide*>(arg);
  auto* session = static_cast<lw::BacktrackSession*>(lw::CurrentExecutor());
  auto* puzzle = lw::GuestNew<Puzzle>(session->heap());
  for (int i = 0; i < 9; ++i) {
    puzzle->cells[i] = static_cast<int>((host->start >> (4 * i)) & 0xf);
  }
  puzzle->depth = 0;

  if (!lw::sys_guess_strategy(host->strategy)) {
    return;
  }
  while (true) {
    if (*host->solved) {
      lw::sys_guess_fail();
    }
    BoardCode code = Encode(puzzle->cells);
    if (code == GoalCode()) {
      *host->solved = true;
      *host->depth = puzzle->depth;
      lw::sys_guess_fail();
    }
    if (!host->closed->insert(code).second) {
      lw::sys_guess_fail();
    }
    int blank = BlankAt(puzzle->cells);
    int moves[4];
    int n = Moves(blank, moves);

    int choice;
    bool weighted = host->strategy == lw::StrategyKind::kAstar ||
                    host->strategy == lw::StrategyKind::kSmaStar;
    if (weighted) {
      lw::GuessCost costs[4];
      for (int i = 0; i < n; ++i) {
        int next[9];
        for (int j = 0; j < 9; ++j) {
          next[j] = puzzle->cells[j];
        }
        next[blank] = next[moves[i]];
        next[moves[i]] = 0;
        costs[i].g = puzzle->depth + 1;
        costs[i].h = Manhattan(next);
      }
      choice = lw::sys_guess_weighted(n, costs);
    } else {
      choice = lw::sys_guess(n);
    }
    puzzle->cells[blank] = puzzle->cells[moves[choice]];
    puzzle->cells[moves[choice]] = 0;
    puzzle->depth++;
  }
}

BoardCode ScrambledBoard(int scramble_moves) {
  int cells[9] = {1, 2, 3, 4, 5, 6, 7, 8, 0};
  lw::Rng rng(99);
  int prev = -1;
  for (int i = 0; i < scramble_moves; ++i) {
    int blank = BlankAt(cells);
    int moves[4];
    int n = Moves(blank, moves);
    int pick;
    do {
      pick = moves[rng.Next() % static_cast<uint64_t>(n)];
    } while (pick == prev && n > 1);
    prev = blank;
    cells[blank] = cells[pick];
    cells[pick] = 0;
  }
  return Encode(cells);
}

void RunStrategy(benchmark::State& state, lw::StrategyKind kind, size_t max_frontier = 0) {
  int scramble = static_cast<int>(state.range(0));
  BoardCode start = ScrambledBoard(scramble);

  uint64_t extensions = 0;
  uint64_t snapshots = 0;
  int depth = -1;
  for (auto _ : state) {
    std::unordered_set<BoardCode> closed;
    bool solved = false;
    depth = -1;

    lw::SessionOptions options;
    options.arena_bytes = 8ull << 20;
    options.strategy.kind = kind;
    options.strategy.max_frontier = max_frontier;
    if (kind == lw::StrategyKind::kIddfs) {
      options.strategy.iddfs_initial_limit = 4;
      options.strategy.iddfs_step = 4;
    }
    options.output = [](std::string_view) {};

    lw::BacktrackSession session(options);
    HostSide host{start, kind, &closed, &solved, &depth};
    lw::Status status = session.Run(&PuzzleGuest, &host);
    if (!status.ok()) {
      state.SkipWithError(status.ToString().c_str());
      return;
    }
    extensions = session.stats().extensions_evaluated;
    snapshots = session.stats().snapshots;
  }
  state.counters["extensions"] = static_cast<double>(extensions);
  state.counters["snapshots"] = static_cast<double>(snapshots);
  state.counters["depth"] = depth;
}

void BM_Astar(benchmark::State& state) { RunStrategy(state, lw::StrategyKind::kAstar); }
void BM_Bfs(benchmark::State& state) { RunStrategy(state, lw::StrategyKind::kBfs); }
void BM_Dfs(benchmark::State& state) { RunStrategy(state, lw::StrategyKind::kDfs); }
void BM_SmaStar(benchmark::State& state) {
  RunStrategy(state, lw::StrategyKind::kSmaStar, /*max_frontier=*/256);
}
void BM_Iddfs(benchmark::State& state) { RunStrategy(state, lw::StrategyKind::kIddfs); }
void BM_Random(benchmark::State& state) { RunStrategy(state, lw::StrategyKind::kRandom); }

BENCHMARK(BM_Astar)->Arg(10)->Arg(16)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Bfs)->Arg(10)->Arg(16)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SmaStar)->Arg(10)->Arg(16)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Iddfs)->Arg(10)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Random)->Arg(10)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Dfs)->Arg(10)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
