// E8 — N solver services over one content-addressed PageStore vs N private
// stores.
//
// The paper's pitch is snapshots as a *system-level service*: many search
// clients on one substrate. The shared store makes the resident-byte side of
// that claim measurable: every service parks its solved problems as
// checkpoints, so its clause arenas, watch lists, and trails stay live — and
// services working related problems republish byte-identical pages that
// collapse to one blob. The `SharedStore/N` vs `PrivateStores/N` pair at each
// N shows the aggregate residency gap; cross_dedup_hits is the headline
// counter (pointer-bearing pages — guest stacks, heap metadata — embed arena
// addresses and can never dedup across arenas, so every hit is real shared
// content).

#include <benchmark/benchmark.h>

#include <cstdlib>

#include <atomic>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "src/core/backtrack.h"
#include "src/service/pool.h"
#include "src/solver/pool_jobs.h"
#include "src/util/rng.h"

namespace {

// One base problem shared by the fleet (the common-context shape of §3.2:
// clients extend the same solved core with private increments).
const lw::Cnf& BaseProblem() {
  static const lw::Cnf* base = [] {
    lw::Rng rng(20260730);
    return new lw::Cnf(lw::RandomKSat(&rng, 300, 1200, 3));
  }();
  return *base;
}

void RunFleet(benchmark::State& state, bool shared) {
  int num_services = static_cast<int>(state.range(0));
  uint64_t resident_bytes = 0;
  uint64_t cross_dedup_hits = 0;
  uint64_t dedup_hits = 0;
  for (auto _ : state) {
    auto shared_store = std::make_shared<lw::PageStore>();
    std::vector<std::shared_ptr<lw::PageStore>> stores;
    std::vector<std::unique_ptr<lw::SolverService>> services;
    for (int i = 0; i < num_services; ++i) {
      auto store = shared ? shared_store : std::make_shared<lw::PageStore>();
      lw::SolverServiceOptions options;
      options.tuning.arena_bytes = 16ull << 20;
      options.tuning.store = store;
      stores.push_back(std::move(store));
      services.push_back(std::make_unique<lw::SolverService>(options));
    }
    // Every service solves the shared base, then branches with a private
    // increment — all checkpoints stay parked (resident) like a real fleet.
    lw::Rng rng(7);
    for (auto& service : services) {
      auto root = service->SolveRoot(BaseProblem());
      if (!root.ok()) {
        state.SkipWithError(root.status().ToString().c_str());
        return;
      }
      lw::Cnf q = lw::RandomKSat(&rng, 300, 8, 3);
      auto ext = service->Extend(
          root->token, std::vector<std::vector<lw::Lit>>(q.clauses.begin(), q.clauses.end()));
      if (!ext.ok()) {
        state.SkipWithError(ext.status().ToString().c_str());
        return;
      }
    }
    resident_bytes = 0;
    cross_dedup_hits = 0;
    dedup_hits = 0;
    for (size_t i = 0; i < stores.size(); ++i) {
      if (shared && i > 0) {
        break;  // one store: count it once
      }
      const lw::PageStore::Stats& stats = stores[i]->stats();
      resident_bytes += stats.bytes_resident();
      cross_dedup_hits += stats.cross_session_dedup_hits;
      dedup_hits += stats.zero_dedup_hits + stats.content_dedup_hits;
    }
  }
  state.counters["resident_bytes"] = static_cast<double>(resident_bytes);
  state.counters["cross_dedup_hits"] = static_cast<double>(cross_dedup_hits);
  state.counters["dedup_hits"] = static_cast<double>(dedup_hits);
}

void BM_SharedStore(benchmark::State& state) { RunFleet(state, true); }
void BM_PrivateStores(benchmark::State& state) { RunFleet(state, false); }

BENCHMARK(BM_SharedStore)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PrivateStores)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

// --- E10: threaded rows — the same fleet on real cores -------------------------

// The queens workload from tests/shared_store_test.cc: page-aligned placement
// trails dedup across sessions; every solution parks, so residency is honest
// fleet state. 92 solutions per session is the parity check.
constexpr int kQueensN = 8;
constexpr uint64_t kQueensSolutions = 92;

void QueensGuest(void* arg) {
  int n = *static_cast<int*>(arg);
  auto* session = static_cast<lw::BacktrackSession*>(lw::CurrentExecutor());
  struct Board {
    int row[16];
    int ld[32];
    int rd[32];
  };
  auto* b = lw::GuestNew<Board>(session->heap());
  std::memset(b, 0, sizeof(Board));
  auto* raw = static_cast<uint8_t*>(session->heap()->Alloc((16 + 1) * lw::kPageSize));
  auto* trail = reinterpret_cast<uint8_t*>(
      (reinterpret_cast<uintptr_t>(raw) + lw::kPageSize - 1) & ~(lw::kPageSize - 1));
  auto* mailbox = static_cast<uint8_t*>(session->heap()->Alloc(16));
  if (lw::sys_guess_strategy(lw::StrategyKind::kDfs)) {
    for (int c = 0; c < n; ++c) {
      int r = lw::sys_guess(n);
      if (b->row[r] || b->ld[r + c] || b->rd[n + r - c]) {
        lw::sys_guess_fail();
      }
      b->row[r] = 1;
      b->ld[r + c] = 1;
      b->rd[n + r - c] = 1;
      std::memset(trail + static_cast<size_t>(c) * lw::kPageSize, r + 1, lw::kPageSize);
      mailbox[c] = static_cast<uint8_t>(r);
    }
    lw::sys_note_solution();
    lw::sys_yield(mailbox, 16);
    lw::sys_guess_fail();
  }
}

// Fixed fleet of 8 queens sessions over `workers` threads and ONE shared
// store: the wall-clock axis of the E10 ablation (1/2/4/8 workers, same total
// work). Sessions are constructed, driven, and destroyed entirely on their
// worker thread; the store is the only shared object.
void BM_QueensFleetThreaded(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  constexpr int kSessions = 8;
  uint64_t resident_bytes = 0;
  uint64_t cross_dedup_hits = 0;
  bool parity_ok = true;
  for (auto _ : state) {
    auto store = std::make_shared<lw::PageStore>();
    std::vector<uint64_t> solutions(kSessions, 0);
    std::atomic<uint64_t> resident_peak{0};
    std::vector<std::thread> threads;
    for (int w = 0; w < workers; ++w) {
      threads.emplace_back([&, w] {
        // Round-robin assignment: worker w runs sessions w, w+workers, ...
        for (int i = w; i < kSessions; i += workers) {
          int n = kQueensN;
          lw::SessionOptions options;
          options.arena_bytes = 2ull << 20;
          options.snapshot_mode = lw::SnapshotMode::kIncremental;  // fault-free on workers
          options.store = store;
          options.output = [](std::string_view) {};
          lw::BacktrackSession session(options);
          if (session.Run(&QueensGuest, &n).ok()) {
            solutions[static_cast<size_t>(i)] = session.stats().solutions;
          }
          // Sampled while this worker's sessions are still parked: honest
          // serving-state residency.
          uint64_t resident = store->stats().bytes_resident();
          uint64_t seen = resident_peak.load(std::memory_order_relaxed);
          while (seen < resident &&
                 !resident_peak.compare_exchange_weak(seen, resident,
                                                      std::memory_order_relaxed)) {
          }
        }
      });
    }
    for (auto& thread : threads) {
      thread.join();
    }
    for (uint64_t s : solutions) {
      parity_ok = parity_ok && s == kQueensSolutions;
    }
    resident_bytes = resident_peak.load(std::memory_order_relaxed);
    cross_dedup_hits = store->stats().cross_session_dedup_hits;
  }
  if (!parity_ok) {
    state.SkipWithError("parity violated: a session lost solutions under sharing");
    return;
  }
  state.counters["resident_bytes"] = static_cast<double>(resident_bytes);
  state.counters["cross_dedup_hits"] = static_cast<double>(cross_dedup_hits);
}

// The §3.2 fleet through ServicePool<SolverService>: N services = N worker threads over
// one shared store (with background compaction), each solving the shared base
// then branching with a private increment — the threaded twin of
// BM_SharedStore/N.
void BM_SolverPool(benchmark::State& state) {
  const int services = static_cast<int>(state.range(0));
  uint64_t resident_bytes = 0;
  uint64_t cross_dedup_hits = 0;
  for (auto _ : state) {
    lw::ServicePoolOptions<lw::SolverService> options;
    options.num_services = services;
    options.service.tuning.arena_bytes = 16ull << 20;
    lw::ServicePool<lw::SolverService> pool(options);
    std::vector<lw::SolverService::Outcome> roots;
    lw::Status status = lw::SolveRootEverywhere(pool, BaseProblem(), &roots);
    if (!status.ok()) {
      state.SkipWithError(status.ToString().c_str());
      return;
    }
    lw::Rng rng(7);
    std::vector<std::future<lw::Result<lw::SolverService::Outcome>>> futures;
    for (int i = 0; i < services; ++i) {
      lw::Cnf q = lw::RandomKSat(&rng, 300, 8, 3);
      futures.push_back(lw::SubmitExtend(
          pool, i, roots[static_cast<size_t>(i)].token,
          std::vector<std::vector<lw::Lit>>(q.clauses.begin(), q.clauses.end())));
    }
    for (auto& future : futures) {
      auto outcome = future.get();
      if (!outcome.ok()) {
        state.SkipWithError(outcome.status().ToString().c_str());
        return;
      }
    }
    lw::ServiceFleetStats stats = pool.fleet_stats();
    resident_bytes = stats.resident_bytes;
    cross_dedup_hits = stats.cross_session_dedup_hits;
  }
  state.counters["resident_bytes"] = static_cast<double>(resident_bytes);
  state.counters["cross_dedup_hits"] = static_cast<double>(cross_dedup_hits);
}

BENCHMARK(BM_QueensFleetThreaded)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

// --- E11: parallel materialization *inside* one session ------------------------
//
// The intra-session twin of BM_QueensFleetThreaded: the same queens fixture
// (page-aligned trails, every solution parked), but instead of splitting
// sessions across threads, one session splits each *materialize* across a
// worker team (SessionOptions::parallel_materialize_workers). The full-copy
// engine makes the snapshot the whole cost — every non-guard page is
// published on every guess — so the sweep isolates the publish loop's
// scaling; parity (92 solutions) and pages/snapshot must be invariant in the
// worker count (the structure is bit-identical to serial by contract).
void BM_QueensParallelMaterialize(benchmark::State& state) {
  const uint32_t workers = static_cast<uint32_t>(state.range(0));
  uint64_t snap_ns = 0;
  uint64_t snapshots = 0;
  uint64_t pages = 0;
  bool parity_ok = true;
  for (auto _ : state) {
    int n = kQueensN;
    lw::SessionOptions options;
    options.arena_bytes = 2ull << 20;
    options.guest_stack_bytes = 256 * 1024;
    options.snapshot_mode = lw::SnapshotMode::kFullCopy;
    options.parallel_materialize_workers = workers;
    options.output = [](std::string_view) {};
    lw::BacktrackSession session(options);
    if (!session.Run(&QueensGuest, &n).ok()) {
      state.SkipWithError("queens run failed");
      return;
    }
    parity_ok = parity_ok && session.stats().solutions == kQueensSolutions;
    snap_ns = session.stats().snapshot_ns;
    snapshots = session.stats().snapshots;
    pages = session.stats().pages_materialized;
  }
  if (!parity_ok) {
    state.SkipWithError("parity violated under parallel materialization");
    return;
  }
  if (snapshots != 0) {
    state.counters["ns/snapshot"] = static_cast<double>(snap_ns) / snapshots;
    state.counters["pages/snapshot"] = static_cast<double>(pages) / snapshots;
  }
}
BENCHMARK(BM_QueensParallelMaterialize)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

// --- E15: the spill tier's two costs ---------------------------------------------

// Scoped spill directory under /tmp, removed on destruction.
class ScopedSpillDir {
 public:
  ScopedSpillDir() {
    char tmpl[] = "/tmp/lwsnap_bench_spill_XXXXXX";
    char* dir = mkdtemp(tmpl);
    path_ = dir != nullptr ? dir : "";
  }
  ~ScopedSpillDir() {
    if (!path_.empty()) {
      std::string cmd = "rm -rf '" + path_ + "'";
      int rc = std::system(cmd.c_str());
      (void)rc;
    }
  }
  bool ok() const { return !path_.empty(); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// Unique incompressible page content (xorshift stream): the codec gets no win,
// so fault-back cost is a raw 4 KiB disk read + memcpy, not a decompress.
void FillNoisePage(uint8_t* buf, uint64_t i) {
  uint64_t state = (i * 0x9e3779b97f4a7c15ull) | 1ull;
  for (size_t off = 0; off < lw::kPageSize; off += sizeof(uint64_t)) {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    std::memcpy(buf + off, &state, sizeof(state));
  }
}

// Fault-back latency: `range(0)` spilled pages are read back through the
// guarded accessor (disk → RAM), then re-spilled — which is free I/O-wise, as
// each blob's spill record is retained across fault-back, so the loop isolates
// the read path. ns/faultback is the paper-facing number: what touching a
// parked-out checkpoint costs per page.
void BM_SpillFaultback(benchmark::State& state) {
  const uint32_t pages = static_cast<uint32_t>(state.range(0));
  ScopedSpillDir dir;
  if (!dir.ok()) {
    state.SkipWithError("mkdtemp failed");
    return;
  }
  lw::PageStoreOptions options;
  options.spill_dir = dir.path();
  lw::PageStore store(options);
  if (!store.spill_enabled()) {
    state.SkipWithError(store.spill_status().ToString().c_str());
    return;
  }
  std::vector<lw::PageRef> refs;
  uint8_t buf[lw::kPageSize];
  for (uint32_t i = 0; i < pages; ++i) {
    FillNoisePage(buf, i);
    refs.push_back(store.Publish(buf));
  }
  store.CompressAllCold();
  if (store.SpillAllCold() != pages) {
    state.SkipWithError("initial spill did not take every page");
    return;
  }
  uint64_t faultbacks = 0;
  for (auto _ : state) {
    for (const lw::PageRef& ref : refs) {
      ref.CopyTo(buf);
      benchmark::DoNotOptimize(buf);
    }
    state.PauseTiming();
    store.SpillAllCold();  // re-spill (record reuse: accounting only, no I/O)
    faultbacks = store.stats().faultbacks;
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * pages);
  state.counters["ns/faultback"] = benchmark::Counter(
      static_cast<double>(state.iterations() * pages),
      static_cast<benchmark::Counter::Flags>(benchmark::Counter::kIsRate |
                                             benchmark::Counter::kInvert));
  state.counters["faultbacks"] = static_cast<double>(faultbacks);
  store.ReleaseBatch(refs);
}
BENCHMARK(BM_SpillFaultback)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);

// The queens parallel-materialize fixture under a RAM budget tight enough to
// drive the full evict → compress → spill → drop ladder: the wall-clock
// overhead of spilling on the park path, against BM_QueensParallelMaterialize
// as its unbudgeted baseline. Parity (92 solutions) must survive paging parked
// solutions out to disk.
void BM_QueensParallelMaterializeSpill(benchmark::State& state) {
  const uint32_t workers = static_cast<uint32_t>(state.range(0));
  ScopedSpillDir dir;
  if (!dir.ok()) {
    state.SkipWithError("mkdtemp failed");
    return;
  }
  uint64_t spills = 0;
  uint64_t faultbacks = 0;
  uint64_t resident_bytes = 0;
  bool parity_ok = true;
  for (auto _ : state) {
    int n = kQueensN;
    auto store = std::make_shared<lw::PageStore>([&] {
      lw::PageStoreOptions store_options;
      store_options.spill_dir = dir.path();
      return store_options;
    }());
    if (!store->spill_enabled()) {
      state.SkipWithError(store->spill_status().ToString().c_str());
      return;
    }
    lw::SessionOptions options;
    options.arena_bytes = 2ull << 20;
    options.guest_stack_bytes = 256 * 1024;
    options.snapshot_mode = lw::SnapshotMode::kFullCopy;
    options.parallel_materialize_workers = workers;
    options.snapshot_byte_budget = 256 * 1024;  // well under the parked population
    options.store = store;
    options.output = [](std::string_view) {};
    lw::BacktrackSession session(options);
    if (!session.Run(&QueensGuest, &n).ok()) {
      state.SkipWithError("queens run failed");
      return;
    }
    parity_ok = parity_ok && session.stats().solutions == kQueensSolutions;
    spills = store->stats().spills;
    faultbacks = store->stats().faultbacks;
    resident_bytes = store->stats().bytes_live();
  }
  if (!parity_ok) {
    state.SkipWithError("parity violated under spilling");
    return;
  }
  state.counters["spills"] = static_cast<double>(spills);
  state.counters["faultbacks"] = static_cast<double>(faultbacks);
  state.counters["resident_bytes"] = static_cast<double>(resident_bytes);
}
BENCHMARK(BM_QueensParallelMaterializeSpill)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MeasureProcessCPUTime();
BENCHMARK(BM_SolverPool)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

}  // namespace

BENCHMARK_MAIN();
