// E8 — N solver services over one content-addressed PageStore vs N private
// stores.
//
// The paper's pitch is snapshots as a *system-level service*: many search
// clients on one substrate. The shared store makes the resident-byte side of
// that claim measurable: every service parks its solved problems as
// checkpoints, so its clause arenas, watch lists, and trails stay live — and
// services working related problems republish byte-identical pages that
// collapse to one blob. The `SharedStore/N` vs `PrivateStores/N` pair at each
// N shows the aggregate residency gap; cross_dedup_hits is the headline
// counter (pointer-bearing pages — guest stacks, heap metadata — embed arena
// addresses and can never dedup across arenas, so every hit is real shared
// content).

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "src/solver/service.h"
#include "src/util/rng.h"

namespace {

// One base problem shared by the fleet (the common-context shape of §3.2:
// clients extend the same solved core with private increments).
const lw::Cnf& BaseProblem() {
  static const lw::Cnf* base = [] {
    lw::Rng rng(20260730);
    return new lw::Cnf(lw::RandomKSat(&rng, 300, 1200, 3));
  }();
  return *base;
}

void RunFleet(benchmark::State& state, bool shared) {
  int num_services = static_cast<int>(state.range(0));
  uint64_t resident_bytes = 0;
  uint64_t cross_dedup_hits = 0;
  uint64_t dedup_hits = 0;
  for (auto _ : state) {
    auto shared_store = std::make_shared<lw::PageStore>();
    std::vector<std::shared_ptr<lw::PageStore>> stores;
    std::vector<std::unique_ptr<lw::SolverService>> services;
    for (int i = 0; i < num_services; ++i) {
      auto store = shared ? shared_store : std::make_shared<lw::PageStore>();
      lw::SolverServiceOptions options;
      options.arena_bytes = 16ull << 20;
      options.store = store;
      stores.push_back(std::move(store));
      services.push_back(std::make_unique<lw::SolverService>(options));
    }
    // Every service solves the shared base, then branches with a private
    // increment — all checkpoints stay parked (resident) like a real fleet.
    lw::Rng rng(7);
    for (auto& service : services) {
      auto root = service->SolveRoot(BaseProblem());
      if (!root.ok()) {
        state.SkipWithError(root.status().ToString().c_str());
        return;
      }
      lw::Cnf q = lw::RandomKSat(&rng, 300, 8, 3);
      auto ext = service->Extend(
          root->token, std::vector<std::vector<lw::Lit>>(q.clauses.begin(), q.clauses.end()));
      if (!ext.ok()) {
        state.SkipWithError(ext.status().ToString().c_str());
        return;
      }
    }
    resident_bytes = 0;
    cross_dedup_hits = 0;
    dedup_hits = 0;
    for (size_t i = 0; i < stores.size(); ++i) {
      if (shared && i > 0) {
        break;  // one store: count it once
      }
      const lw::PageStore::Stats& stats = stores[i]->stats();
      resident_bytes += stats.bytes_resident();
      cross_dedup_hits += stats.cross_session_dedup_hits;
      dedup_hits += stats.zero_dedup_hits + stats.content_dedup_hits;
    }
  }
  state.counters["resident_bytes"] = static_cast<double>(resident_bytes);
  state.counters["cross_dedup_hits"] = static_cast<double>(cross_dedup_hits);
  state.counters["dedup_hits"] = static_cast<double>(dedup_hits);
}

void BM_SharedStore(benchmark::State& state) { RunFleet(state, true); }
void BM_PrivateStores(benchmark::State& state) { RunFleet(state, false); }

BENCHMARK(BM_SharedStore)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PrivateStores)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
