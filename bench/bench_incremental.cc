// E3 — incremental solving via snapshots (§2, §3.2):
//
//   "an incremental solver given formula p immediately followed by formula
//    p∧q can solve both in less time than solving p and then solving p∧q
//    from scratch"
//
// Rows solve a fixed random-3SAT base p (150 vars @ r=4.0) and then a chain of
// increments q1..qm (each `k` clauses):
//
//   Scratch/k            — every step rebuilds p∧q1..qi in a fresh solver
//   NativeIncremental/k  — one live solver, AddClause between Solve calls
//   SnapshotService/k    — the §3.2 service: each step resumes the parent
//                          problem's immutable snapshot and extends it
//
// Expected shape: Scratch ≫ NativeIncremental ≈ SnapshotService (the snapshot
// tax is page-copy work, bounded and independent of the base problem's size).

#include <benchmark/benchmark.h>

#include <map>
#include <vector>

#include "src/solver/cnf.h"
#include "src/solver/sat.h"
#include "src/solver/service.h"
#include "src/util/rng.h"

namespace {

constexpr int kVars = 150;
constexpr double kRatio = 4.0;
constexpr int kChain = 6;  // increments per measured episode

struct Workload {
  lw::Cnf base;
  std::vector<std::vector<std::vector<lw::Lit>>> increments;  // [step][clause][lit]
};

const Workload& GetWorkload(int k) {
  static std::map<int, Workload>* cache = new std::map<int, Workload>();
  auto it = cache->find(k);
  if (it != cache->end()) {
    return it->second;
  }
  lw::Rng rng(4242 + static_cast<uint64_t>(k));
  Workload w;
  w.base = lw::RandomKSat(&rng, kVars, static_cast<size_t>(kVars * kRatio), 3);
  for (int step = 0; step < kChain; ++step) {
    lw::Cnf q = lw::RandomKSat(&rng, kVars, static_cast<size_t>(k), 3);
    w.increments.emplace_back(q.clauses.begin(), q.clauses.end());
  }
  return cache->emplace(k, std::move(w)).first->second;
}

void LoadInto(lw::Solver* solver, const lw::Cnf& cnf) {
  solver->EnsureVars(cnf.num_vars);
  for (const auto& clause : cnf.clauses) {
    solver->AddClause(clause.data(), static_cast<uint32_t>(clause.size()));
  }
}

void BM_Scratch(benchmark::State& state) {
  const Workload& w = GetWorkload(static_cast<int>(state.range(0)));
  uint64_t conflicts = 0;
  for (auto _ : state) {
    // Step i re-solves base ∧ q1..qi from zero.
    for (int step = 0; step < kChain; ++step) {
      lw::Solver solver;
      LoadInto(&solver, w.base);
      for (int i = 0; i <= step; ++i) {
        for (const auto& clause : w.increments[static_cast<size_t>(i)]) {
          solver.AddClause(clause.data(), static_cast<uint32_t>(clause.size()));
        }
      }
      benchmark::DoNotOptimize(solver.Solve());
      conflicts += solver.stats().conflicts;
    }
  }
  state.counters["conflicts"] = static_cast<double>(conflicts);
  state.SetItemsProcessed(state.iterations() * kChain);
}
BENCHMARK(BM_Scratch)->Arg(1)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);

void BM_NativeIncremental(benchmark::State& state) {
  const Workload& w = GetWorkload(static_cast<int>(state.range(0)));
  uint64_t conflicts = 0;
  for (auto _ : state) {
    lw::Solver solver;
    LoadInto(&solver, w.base);
    benchmark::DoNotOptimize(solver.Solve());
    for (int step = 0; step < kChain; ++step) {
      for (const auto& clause : w.increments[static_cast<size_t>(step)]) {
        solver.AddClause(clause.data(), static_cast<uint32_t>(clause.size()));
      }
      benchmark::DoNotOptimize(solver.Solve());
    }
    conflicts += solver.stats().conflicts;
  }
  state.counters["conflicts"] = static_cast<double>(conflicts);
  state.SetItemsProcessed(state.iterations() * kChain);
}
BENCHMARK(BM_NativeIncremental)->Arg(1)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);

void BM_SnapshotService(benchmark::State& state) {
  const Workload& w = GetWorkload(static_cast<int>(state.range(0)));
  uint64_t restores = 0;
  for (auto _ : state) {
    lw::SolverServiceOptions options;
    options.tuning.arena_bytes = 32ull << 20;
    lw::SolverService service(options);
    auto node = service.SolveRoot(w.base);
    if (!node.ok()) {
      state.SkipWithError(node.status().ToString().c_str());
      return;
    }
    lw::Checkpoint cur = std::move(node->token);
    for (int step = 0; step < kChain; ++step) {
      auto next = service.Extend(cur, w.increments[static_cast<size_t>(step)]);
      if (!next.ok()) {
        state.SkipWithError(next.status().ToString().c_str());
        return;
      }
      cur = std::move(next->token);
    }
    restores = service.session_stats().restores;
  }
  state.counters["restores"] = static_cast<double>(restores);
  state.SetItemsProcessed(state.iterations() * kChain);
}
BENCHMARK(BM_SnapshotService)->Arg(1)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);

// The §3.2 branching case no scratch/native solver can do cheaply: extend the
// SAME parent with F divergent increments. Native incremental must either
// re-solve (scratch per branch) or pollute one solver with all branches; the
// service just resumes the parent snapshot F times.
void BM_SnapshotBranching(benchmark::State& state) {
  const Workload& w = GetWorkload(4);
  int fanout = static_cast<int>(state.range(0));
  for (auto _ : state) {
    lw::SolverServiceOptions options;
    options.tuning.arena_bytes = 32ull << 20;
    lw::SolverService service(options);
    auto root = service.SolveRoot(w.base);
    if (!root.ok()) {
      state.SkipWithError(root.status().ToString().c_str());
      return;
    }
    for (int branch = 0; branch < fanout; ++branch) {
      auto child =
          service.Extend(root->token, w.increments[static_cast<size_t>(branch % kChain)]);
      if (!child.ok()) {
        state.SkipWithError(child.status().ToString().c_str());
        return;
      }
    }
  }
  state.SetItemsProcessed(state.iterations() * fanout);
}
BENCHMARK(BM_SnapshotBranching)->Arg(2)->Arg(8)->Arg(32)->Unit(benchmark::kMillisecond);

void BM_ScratchBranching(benchmark::State& state) {
  const Workload& w = GetWorkload(4);
  int fanout = static_cast<int>(state.range(0));
  for (auto _ : state) {
    for (int branch = 0; branch < fanout; ++branch) {
      lw::Solver solver;
      LoadInto(&solver, w.base);
      for (const auto& clause : w.increments[static_cast<size_t>(branch % kChain)]) {
        solver.AddClause(clause.data(), static_cast<uint32_t>(clause.size()));
      }
      benchmark::DoNotOptimize(solver.Solve());
    }
  }
  state.SetItemsProcessed(state.iterations() * fanout);
}
BENCHMARK(BM_ScratchBranching)->Arg(2)->Arg(8)->Arg(32)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
