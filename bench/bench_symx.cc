// E6 — multi-path symbolic execution: software state copying vs system-level
// snapshots (§2's S2E argument).
//
// Workload: BranchTreeProgram(depth, words) — 2^depth paths, each level
// dirtying `words` memory words (the per-path state-size knob). Rows:
//
//   Explicit/depth/words        — deep-copy-per-fork baseline (S2E-style
//                                 software state management)
//   Snapshot/depth/words        — lwsnap CoW backend (the paper's proposal)
//   SnapshotFullCopy/depth/words— lwsnap with whole-arena checkpoints
//
// Expected shape: Explicit degrades as `words` (state size) grows; Snapshot's
// cost follows dirtied pages, not total state; FullCopy is uniformly worst.
// items_processed = completed paths, so compare paths/second.

#include <benchmark/benchmark.h>

#include <algorithm>

#include "src/symx/explorer.h"
#include "src/symx/programs.h"

namespace {

// range(0)=tree depth, range(1)=words written per level (the dirty footprint),
// range(2)=total VM memory in KiB (the state size a software copy must pay for).
void Configure(lw::ExploreOptions* options, const benchmark::State& state) {
  uint32_t needed = static_cast<uint32_t>(state.range(0) * state.range(1) + 64);
  uint32_t from_kb = static_cast<uint32_t>(state.range(2)) * 1024u / 8u;
  options->vm.mem_words = std::max(needed, from_kb);
  options->arena_bytes = 64ull << 20;
}

void BM_Explicit(benchmark::State& state) {
  lw::Program program =
      lw::BranchTreeProgram(static_cast<int>(state.range(0)), static_cast<int>(state.range(1)));
  lw::ExploreOptions options;
  Configure(&options, state);
  lw::ExploreStats stats;
  for (auto _ : state) {
    lw::ExplicitExplorer explorer(options);
    lw::Status status = explorer.Explore(program, &stats, nullptr);
    if (!status.ok()) {
      state.SkipWithError(status.ToString().c_str());
      return;
    }
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(stats.paths_completed));
  state.counters["paths"] = static_cast<double>(stats.paths_completed);
  state.counters["copied_bytes"] = static_cast<double>(stats.state_bytes_copied);
}

void BM_Snapshot(benchmark::State& state) {
  lw::Program program =
      lw::BranchTreeProgram(static_cast<int>(state.range(0)), static_cast<int>(state.range(1)));
  lw::ExploreOptions options;
  Configure(&options, state);
  lw::ExploreStats stats;
  lw::SessionStats session;
  for (auto _ : state) {
    lw::SnapshotExplorer explorer(options);
    lw::Status status = explorer.Explore(program, &stats, nullptr);
    if (!status.ok()) {
      state.SkipWithError(status.ToString().c_str());
      return;
    }
    session = explorer.session_stats();
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(stats.paths_completed));
  state.counters["paths"] = static_cast<double>(stats.paths_completed);
  state.counters["pages_materialized"] = static_cast<double>(session.pages_materialized);
}

void BM_SnapshotFullCopy(benchmark::State& state) {
  lw::Program program =
      lw::BranchTreeProgram(static_cast<int>(state.range(0)), static_cast<int>(state.range(1)));
  lw::ExploreOptions options;
  Configure(&options, state);
  options.snapshot_mode = lw::SnapshotMode::kFullCopy;
  options.arena_bytes = 8ull << 20;  // keep whole-arena copies tractable
  lw::ExploreStats stats;
  for (auto _ : state) {
    lw::SnapshotExplorer explorer(options);
    lw::Status status = explorer.Explore(program, &stats, nullptr);
    if (!status.ok()) {
      state.SkipWithError(status.ToString().c_str());
      return;
    }
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(stats.paths_completed));
  state.counters["paths"] = static_cast<double>(stats.paths_completed);
}

// The big-state rows are the paper's regime: per-path state (up to 8 MiB) far
// exceeds the per-fork dirty footprint, so copying whole states loses to CoW.
#define SYMX_ARGS(B)                                                                     \
  B->Args({6, 1, 0})->Args({6, 64, 0})->Args({8, 64, 64})->Args({8, 64, 512})            \
      ->Args({8, 64, 2048})->Args({8, 64, 8192})->Unit(benchmark::kMillisecond)

SYMX_ARGS(BENCHMARK(BM_Explicit));
SYMX_ARGS(BENCHMARK(BM_Snapshot));
BENCHMARK(BM_SnapshotFullCopy)
    ->Args({6, 64, 0})
    ->Args({8, 64, 0})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// The bug-finding episode end-to-end (password + checksum): dominated by
// solver queries, so backend differences should mostly vanish — a control.
void BM_PasswordEpisode(benchmark::State& state) {
  lw::Program program = lw::PasswordProgram({0xfeedface, 0x8badf00d, 0x1337, 0x42});
  lw::ExploreOptions options;
  options.vm.mem_words = 64;
  options.arena_bytes = 32ull << 20;
  bool snapshots = state.range(0) == 1;
  uint64_t violations = 0;
  for (auto _ : state) {
    lw::ExploreStats stats;
    lw::Status status;
    if (snapshots) {
      lw::SnapshotExplorer explorer(options);
      status = explorer.Explore(program, &stats, nullptr);
    } else {
      lw::ExplicitExplorer explorer(options);
      status = explorer.Explore(program, &stats, nullptr);
    }
    if (!status.ok()) {
      state.SkipWithError(status.ToString().c_str());
      return;
    }
    violations = stats.violations;
  }
  state.SetLabel(snapshots ? "snapshot" : "explicit");
  state.counters["violations"] = static_cast<double>(violations);
}
BENCHMARK(BM_PasswordEpisode)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
