// E1 — the paper's §5 evaluation sentence, as a bench:
//
//   "When applied to toy applications like n-queens, our prototype performs
//    (as expected) substantially worse than a hand-coded implementation, but
//    better than a Prolog implementation running on XSB."
//
// Rows (all count *all* solutions of N-queens):
//   HandCoded     — recursive bitmask backtracker (the lower bound)
//   Lwsnap        — Figure 1's program on the CoW snapshot engine
//   LwsnapFullCopy— same guest, classic whole-arena checkpoint mode [14]
//   Fork          — same guest on the fork/wait/exit strawman of §3
//   Prolog        — n-queens on lwprolog (the XSB stand-in)
//
// Expected shape: HandCoded ≪ Lwsnap < Prolog, Fork slowest per state, and
// FullCopy ≫ CoW as the arena grows.

#include <benchmark/benchmark.h>

#include <string>

#include "src/core/backtrack.h"
#include "src/prolog/machine.h"

namespace {

// --- hand-coded baseline ---

int HandCodedCount(int n) {
  // Bitmask DFS; undo is a register pop — the cheapest possible backtracking.
  struct Rec {
    static int Go(int n, int row, uint32_t cols, uint32_t ld, uint32_t rd) {
      if (row == n) {
        return 1;
      }
      int solutions = 0;
      uint32_t free = ~(cols | ld | rd) & ((1u << n) - 1);
      while (free != 0) {
        uint32_t bit = free & (0u - free);
        free -= bit;
        solutions += Go(n, row + 1, cols | bit, (ld | bit) << 1, (rd | bit) >> 1);
      }
      return solutions;
    }
  };
  return Rec::Go(n, 0, 0, 0, 0);
}

void BM_HandCoded(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  int solutions = 0;
  for (auto _ : state) {
    solutions = HandCodedCount(n);
    benchmark::DoNotOptimize(solutions);
  }
  state.counters["solutions"] = solutions;
}
BENCHMARK(BM_HandCoded)->Arg(6)->Arg(7)->Arg(8);

// --- the Figure 1 guest (shared by the snapshot engines and fork engine) ---

struct Board {
  int n = 0;
  int col[16] = {};
  int row[16] = {};
  int ld[32] = {};
  int rd[32] = {};
};

void NQueensBody(Board* b) {
  const int n = b->n;
  for (int c = 0; c < n; ++c) {
    int r = lw::sys_guess(n);
    if (b->row[r] || b->ld[r + c] || b->rd[n + r - c]) {
      lw::sys_guess_fail();
    }
    b->col[c] = r;
    b->row[r] = c + 1;
    b->ld[r + c] = 1;
    b->rd[n + r - c] = 1;
  }
  lw::sys_note_solution();
}

void SnapshotGuest(void* arg) {
  int n = *static_cast<int*>(arg);
  auto* session = static_cast<lw::BacktrackSession*>(lw::CurrentExecutor());
  Board* board = lw::GuestNew<Board>(session->heap());
  board->n = n;
  if (lw::sys_guess_strategy(lw::StrategyKind::kDfs)) {
    NQueensBody(board);
    lw::sys_guess_fail();
  }
}

void RunSnapshotBench(benchmark::State& state, lw::SnapshotMode mode,
                      uint32_t hot_page_limit = 64) {
  int n = static_cast<int>(state.range(0));
  uint64_t solutions = 0;
  uint64_t snapshots = 0;
  uint64_t restores = 0;
  for (auto _ : state) {
    lw::SessionOptions options;
    options.arena_bytes = 8ull << 20;
    options.snapshot_mode = mode;
    options.hot_page_limit = hot_page_limit;
    options.output = [](std::string_view) {};
    lw::BacktrackSession session(options);
    lw::Status status = session.Run(&SnapshotGuest, &n);
    if (!status.ok()) {
      state.SkipWithError(status.ToString().c_str());
      return;
    }
    solutions = session.stats().solutions;
    snapshots = session.stats().snapshots;
    restores = session.stats().restores;
  }
  state.counters["solutions"] = static_cast<double>(solutions);
  state.counters["snapshots"] = static_cast<double>(snapshots);
  state.counters["restores"] = static_cast<double>(restores);
}

void BM_Lwsnap(benchmark::State& state) { RunSnapshotBench(state, lw::SnapshotMode::kCow); }
BENCHMARK(BM_Lwsnap)->Arg(6)->Arg(7)->Arg(8)->Unit(benchmark::kMillisecond);

// Ablation: hot-page prediction off — every restore pays the full
// SIGSEGV + 2×mprotect protocol (how much the userspace fault path costs).
void BM_LwsnapNoHotPages(benchmark::State& state) {
  RunSnapshotBench(state, lw::SnapshotMode::kCow, /*hot_page_limit=*/0);
}
BENCHMARK(BM_LwsnapNoHotPages)->Arg(6)->Arg(7)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_LwsnapFullCopy(benchmark::State& state) {
  RunSnapshotBench(state, lw::SnapshotMode::kFullCopy);
}
BENCHMARK(BM_LwsnapFullCopy)->Arg(6)->Arg(7)->Iterations(1)->Unit(benchmark::kMillisecond);

// --- fork strawman ---

struct ForkBoard {
  int n = 0;
};

void ForkGuest(void* arg) {
  // Fork children share the parent's memory image at fork time, so plain
  // locals work — each child's writes are private.
  Board board;
  board.n = static_cast<ForkBoard*>(arg)->n;
  if (lw::sys_guess_strategy(lw::StrategyKind::kDfs)) {
    NQueensBody(&board);
    lw::sys_guess_fail();
  }
}

void BM_Fork(benchmark::State& state) {
  ForkBoard arg{static_cast<int>(state.range(0))};
  uint64_t forks = 0;
  uint64_t solutions = 0;
  for (auto _ : state) {
    lw::ForkSessionOptions options;
    options.output = [](std::string_view) {};
    lw::ForkSession session(options);
    lw::Status status = session.Run(&ForkGuest, &arg);
    if (!status.ok()) {
      state.SkipWithError(status.ToString().c_str());
      return;
    }
    forks = session.stats().forks;
    solutions = session.stats().solutions;
  }
  state.counters["solutions"] = static_cast<double>(solutions);
  state.counters["forks"] = static_cast<double>(forks);
}
BENCHMARK(BM_Fork)->Arg(6)->Iterations(1)->Unit(benchmark::kMillisecond);

// --- Prolog comparison point ---

constexpr char kQueensProgram[] = R"(
range(N, N, [N]) :- !.
range(M, N, [M|T]) :- M < N, M1 is M + 1, range(M1, N, T).
select_(X, [X|T], T).
select_(X, [H|T], [H|R]) :- select_(X, T, R).
attack(X, Xs) :- attack_(X, 1, Xs).
attack_(X, N, [Y|_]) :- X =:= Y + N.
attack_(X, N, [Y|_]) :- X =:= Y - N.
attack_(X, N, [_|Ys]) :- N1 is N + 1, attack_(X, N1, Ys).
queens_(Unplaced, Placed, Qs) :-
  select_(Q, Unplaced, Rest), \+ attack(Q, Placed), queens_(Rest, [Q|Placed], Qs).
queens_([], Qs, Qs).
queens(N, Qs) :- range(1, N, Ns), queens_(Ns, [], Qs).
)";

void BM_Prolog(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  std::string query = "queens(" + std::to_string(n) + ", Qs).";
  uint64_t solutions = 0;
  uint64_t inferences = 0;
  for (auto _ : state) {
    lw::PrologMachine machine;
    if (!machine.Consult(kQueensProgram).ok()) {
      state.SkipWithError("consult failed");
      return;
    }
    auto count = machine.Query(query);
    if (!count.ok()) {
      state.SkipWithError(count.status().ToString().c_str());
      return;
    }
    solutions = *count;
    inferences = machine.stats().inferences;
  }
  state.counters["solutions"] = static_cast<double>(solutions);
  state.counters["inferences"] = static_cast<double>(inferences);
}
BENCHMARK(BM_Prolog)->Arg(6)->Arg(7)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
