// E4 — the §5 "problem granularity and memory locality" crossover:
//
//   "problems with a trivial instruction count per extension step are best
//    implemented by hand-coding the backtracking [...] The execution
//    granularity, complexity of hand-coded logic, and page-level memory
//    locality will each play a role to determine when the approach provides
//    a performance win."
//
// Workload: a synthetic binary search tree of fixed depth. Every extension
// step (a) spins for `work_us` of compute and (b) writes `pages` distinct
// pages of a large state buffer. The hand-coded baseline must save and
// restore the pages it touches (that is what hand-rolled undo costs); the
// lwsnap guest just writes — containment is the system's job.
//
// Sweep work_us × pages; the crossover frontier is where Lwsnap/HandCoded
// time ratio drops below 1.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/core/backtrack.h"
#include "src/snapshot/soft_dirty.h"

namespace {

constexpr int kDepth = 7;  // 2^7 = 128 leaves
constexpr size_t kPage = 4096;

// Deterministic spin: scale by calibrated iterations per microsecond.
uint64_t SpinIterationsPerUs() {
  static uint64_t cached = [] {
    volatile uint64_t sink = 1;
    auto start = std::chrono::steady_clock::now();
    constexpr uint64_t kProbe = 1u << 22;
    for (uint64_t i = 0; i < kProbe; ++i) {
      sink = sink * 6364136223846793005ull + 1442695040888963407ull;
    }
    auto elapsed = std::chrono::duration_cast<std::chrono::nanoseconds>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    return static_cast<uint64_t>(static_cast<double>(kProbe) * 1000.0 /
                                 static_cast<double>(elapsed));
  }();
  return cached;
}

void Spin(uint64_t work_us) {
  volatile uint64_t sink = 1;
  uint64_t iterations = work_us * SpinIterationsPerUs();
  for (uint64_t i = 0; i < iterations; ++i) {
    sink = sink * 6364136223846793005ull + 1442695040888963407ull;
  }
}

// One extension step's state mutation: touch `pages` pages at a depth-specific
// offset so siblings write different data.
void TouchPages(uint8_t* state, uint32_t pages, int depth, int direction) {
  for (uint32_t p = 0; p < pages; ++p) {
    state[p * kPage + static_cast<size_t>(depth)] =
        static_cast<uint8_t>(depth * 2 + direction);
  }
}

// --- hand-coded baseline: explicit save/undo of everything it touches ---

struct HandCoded {
  uint8_t* state;
  uint32_t pages;
  uint64_t work_us;
  uint64_t leaves = 0;
  std::vector<uint8_t> save_buffer;

  void Explore(int depth) {
    if (depth == kDepth) {
      ++leaves;
      return;
    }
    for (int direction = 0; direction < 2; ++direction) {
      // Save the pages this step will clobber (the hand-rolled undo log).
      uint8_t* save = save_buffer.data() + static_cast<size_t>(depth) * pages * kPage;
      for (uint32_t p = 0; p < pages; ++p) {
        std::memcpy(save + p * kPage, state + p * kPage, kPage);
      }
      Spin(work_us);
      TouchPages(state, pages, depth, direction);
      Explore(depth + 1);
      for (uint32_t p = 0; p < pages; ++p) {
        std::memcpy(state + p * kPage, save + p * kPage, kPage);
      }
    }
  }
};

void BM_HandCoded(benchmark::State& state) {
  uint64_t work_us = static_cast<uint64_t>(state.range(0));
  uint32_t pages = static_cast<uint32_t>(state.range(1));
  std::vector<uint8_t> buffer(pages * kPage, 0);
  HandCoded hc;
  hc.state = buffer.data();
  hc.pages = pages;
  hc.work_us = work_us;
  hc.save_buffer.resize(static_cast<size_t>(kDepth) * pages * kPage);
  for (auto _ : state) {
    hc.leaves = 0;
    hc.Explore(0);
    benchmark::DoNotOptimize(hc.leaves);
  }
  state.counters["leaves"] = static_cast<double>(hc.leaves);
}

// --- lwsnap guest: no undo code at all ---

struct SnapArgs {
  uint64_t work_us;
  uint32_t pages;
  uint64_t leaves;  // host-side collector
};

void SnapGuest(void* arg) {
  auto* args = static_cast<SnapArgs*>(arg);
  auto* session = static_cast<lw::BacktrackSession*>(lw::CurrentExecutor());
  auto* buffer = static_cast<uint8_t*>(session->heap()->Alloc(args->pages * kPage + kPage));
  if (buffer == nullptr) {
    return;
  }
  if (!lw::sys_guess_strategy(lw::StrategyKind::kDfs)) {
    return;
  }
  for (int depth = 0; depth < kDepth; ++depth) {
    int direction = lw::sys_guess(2);
    Spin(args->work_us);
    TouchPages(buffer, args->pages, depth, direction);
  }
  args->leaves++;
  lw::sys_guess_fail();  // enumerate every leaf
}

void RunLwsnap(benchmark::State& state, lw::SnapshotMode mode) {
  SnapArgs args;
  args.work_us = static_cast<uint64_t>(state.range(0));
  args.pages = static_cast<uint32_t>(state.range(1));
  lw::DirtySource dirty_source = lw::DirtySource::kFull;
  uint64_t resident_bytes = 0;
  uint64_t dedup_hits = 0;
  uint64_t compressed_blobs = 0;
  for (auto _ : state) {
    args.leaves = 0;
    lw::SessionOptions options;
    options.arena_bytes = 32ull << 20;
    options.snapshot_mode = mode;
    options.output = [](std::string_view) {};
    lw::BacktrackSession session(options);
    lw::Status status = session.Run(&SnapGuest, &args);
    if (!status.ok()) {
      state.SkipWithError(status.ToString().c_str());
      return;
    }
    dirty_source = session.stats().dirty_source;
    const lw::PageStore::Stats& store = session.store().stats();
    resident_bytes = store.bytes_resident();
    dedup_hits = store.zero_dedup_hits + store.content_dedup_hits;
    compressed_blobs = store.compressed_blobs;
  }
  state.SetLabel(std::string(lw::SnapshotModeName(mode)) + " dirty_src=" +
                 lw::DirtySourceName(dirty_source));
  state.counters["leaves"] = static_cast<double>(args.leaves);
  state.counters["resident_bytes"] = static_cast<double>(resident_bytes);
  state.counters["dedup_hits"] = static_cast<double>(dedup_hits);
  state.counters["compressed_blobs"] = static_cast<double>(compressed_blobs);
}

void BM_LwsnapCow(benchmark::State& state) { RunLwsnap(state, lw::SnapshotMode::kCow); }
void BM_LwsnapFullCopy(benchmark::State& state) {
  RunLwsnap(state, lw::SnapshotMode::kFullCopy);
}
void BM_LwsnapIncremental(benchmark::State& state) {
  RunLwsnap(state, lw::SnapshotMode::kIncremental);
}
// E12 — adaptive over the same crossover grid: its whole pitch is never being
// the wrong fixed engine at any (work_us, pages) point.
void BM_LwsnapAdaptive(benchmark::State& state) {
  RunLwsnap(state, lw::SnapshotMode::kAdaptive);
}
// Registered from main() only when the kernel supports soft-dirty.
void BM_LwsnapSoftDirty(benchmark::State& state) {
  RunLwsnap(state, lw::SnapshotMode::kSoftDirty);
}

#define CROSSOVER_ARGS(B)                                                              \
  B->Args({0, 1})->Args({0, 16})->Args({0, 64})->Args({10, 1})->Args({10, 16})        \
      ->Args({10, 64})->Args({100, 1})->Args({100, 16})->Args({100, 64})               \
      ->Unit(benchmark::kMillisecond)

CROSSOVER_ARGS(BENCHMARK(BM_HandCoded));
CROSSOVER_ARGS(BENCHMARK(BM_LwsnapCow));
CROSSOVER_ARGS(BENCHMARK(BM_LwsnapFullCopy));
CROSSOVER_ARGS(BENCHMARK(BM_LwsnapIncremental));
CROSSOVER_ARGS(BENCHMARK(BM_LwsnapAdaptive));

// --- engine-parity harness: n-queens through all three backends ---
//
// Same guest, same strategy, only SessionOptions::snapshot_mode differs; each
// row reports the solution count and fails loudly if an engine disagrees with
// the known answer — the acceptance check that snapshot mechanics are
// observationally interchangeable behind the SnapshotEngine seam.

constexpr int kQueensN = 8;
constexpr uint64_t kQueensSolutions = 92;

void QueensGuest(void* arg) {
  int n = *static_cast<int*>(arg);
  auto* session = static_cast<lw::BacktrackSession*>(lw::CurrentExecutor());
  struct Board {
    int row[16];
    int ld[32];
    int rd[32];
  };
  auto* b = lw::GuestNew<Board>(session->heap());
  std::memset(b, 0, sizeof(Board));
  if (lw::sys_guess_strategy(lw::StrategyKind::kDfs)) {
    for (int c = 0; c < n; ++c) {
      int r = lw::sys_guess(n);
      if (b->row[r] || b->ld[r + c] || b->rd[n + r - c]) {
        lw::sys_guess_fail();
      }
      b->row[r] = 1;
      b->ld[r + c] = 1;
      b->rd[n + r - c] = 1;
    }
    lw::sys_note_solution();
    lw::sys_guess_fail();
  }
}

void RunQueens(benchmark::State& state, lw::SnapshotMode mode) {
  lw::DirtySource dirty_source = lw::DirtySource::kFull;
  uint64_t solutions = 0;
  uint64_t resident_bytes = 0;
  uint64_t dedup_hits = 0;
  uint64_t compressed_blobs = 0;
  for (auto _ : state) {
    int n = kQueensN;
    lw::SessionOptions options;
    options.arena_bytes = 16ull << 20;
    options.snapshot_mode = mode;
    options.output = [](std::string_view) {};
    lw::BacktrackSession session(options);
    lw::Status status = session.Run(&QueensGuest, &n);
    if (!status.ok()) {
      state.SkipWithError(status.ToString().c_str());
      return;
    }
    solutions = session.stats().solutions;
    if (solutions != kQueensSolutions) {
      state.SkipWithError("engine produced a wrong n-queens solution count");
      return;
    }
    dirty_source = session.stats().dirty_source;
    const lw::PageStore::Stats& store = session.store().stats();
    resident_bytes = store.bytes_resident();
    dedup_hits = store.zero_dedup_hits + store.content_dedup_hits;
    compressed_blobs = store.compressed_blobs;
  }
  state.SetLabel(std::string(lw::SnapshotModeName(mode)) + " dirty_src=" +
                 lw::DirtySourceName(dirty_source));
  state.counters["solutions"] = static_cast<double>(solutions);
  state.counters["resident_bytes"] = static_cast<double>(resident_bytes);
  state.counters["dedup_hits"] = static_cast<double>(dedup_hits);
  state.counters["compressed_blobs"] = static_cast<double>(compressed_blobs);
}

void BM_QueensCow(benchmark::State& state) { RunQueens(state, lw::SnapshotMode::kCow); }
void BM_QueensFullCopy(benchmark::State& state) {
  RunQueens(state, lw::SnapshotMode::kFullCopy);
}
void BM_QueensIncremental(benchmark::State& state) {
  RunQueens(state, lw::SnapshotMode::kIncremental);
}
void BM_QueensAdaptive(benchmark::State& state) {
  RunQueens(state, lw::SnapshotMode::kAdaptive);
}
// Registered from main() only when the kernel supports soft-dirty.
void BM_QueensSoftDirty(benchmark::State& state) {
  RunQueens(state, lw::SnapshotMode::kSoftDirty);
}

BENCHMARK(BM_QueensCow)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_QueensFullCopy)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_QueensIncremental)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_QueensAdaptive)->Unit(benchmark::kMillisecond);

}  // namespace

// `--lwsnap_probe_soft_dirty`: exit 0 if the kernel tracks soft-dirty bits,
// 2 if not — lets scripts decide up front whether *SoftDirty rows exist here.
int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--lwsnap_probe_soft_dirty") == 0) {
      lw::Status probe = lw::SoftDirtyTracker::Probe();
      std::fprintf(stderr, "soft-dirty: %s\n",
                   probe.ok() ? "supported" : probe.ToString().c_str());
      return probe.ok() ? 0 : 2;
    }
  }
  if (lw::SoftDirtyTracker::Supported()) {
    CROSSOVER_ARGS(benchmark::RegisterBenchmark("BM_LwsnapSoftDirty", &BM_LwsnapSoftDirty));
    benchmark::RegisterBenchmark("BM_QueensSoftDirty", &BM_QueensSoftDirty)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
