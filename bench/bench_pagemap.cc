// E7 — the parent-relationship encoding ablation (§3.1):
//
//   "Each partial candidate also has an immutable relationship with its
//    parent, which can be leveraged to encode the state in a space-efficient
//    manner."
//
// Compares the two PageMap representations across snapshot-tree shapes:
//
//   Share/kind/dirty   — publishing a snapshot's map (flat = O(pages) vector
//                        copy; radix = O(1) root copy after O(dirty) path
//                        copies during the mutation phase)
//   Diff/kind/dirty    — restore-time page diff between sibling snapshots
//                        (flat = O(pages) scan; radix skips shared subtrees)
//   TreeBytes/kind     — map structure bytes across a 256-snapshot chain
//
// Expected shape: flat wins share/diff for small maps or huge dirty ratios;
// radix wins asymptotically on big, sparsely-dirtied address spaces — the
// GB-scale address spaces the paper targets.

#include <benchmark/benchmark.h>

#include <unordered_set>
#include <vector>

#include "src/snapshot/page_map.h"
#include "src/snapshot/page_store.h"
#include "src/util/rng.h"

namespace {

constexpr uint32_t kPages = 16384;  // a 64 MiB arena's worth of 4 KiB pages

lw::PageMap MakeBase(lw::PageMapKind kind, lw::PageStore* store) {
  lw::PageMap map(kind, kPages);
  lw::PageRef zero = store->ZeroPage();
  for (uint32_t page = 0; page < kPages; ++page) {
    map.Set(page, zero);
  }
  return map;
}

void BM_Share(benchmark::State& state) {
  auto kind = state.range(0) == 0 ? lw::PageMapKind::kFlat : lw::PageMapKind::kRadix;
  uint32_t dirty = static_cast<uint32_t>(state.range(1));
  lw::PageStore store;
  lw::PageMap base = MakeBase(kind, &store);
  uint8_t page_bytes[lw::kPageSize] = {1};
  lw::Rng rng(7);

  for (auto _ : state) {
    // One snapshot step: dirty `dirty` random pages in a working copy, then
    // publish (share) the result the way the session does.
    lw::PageMap working = base;
    for (uint32_t i = 0; i < dirty; ++i) {
      working.Set(rng.Next() % kPages, store.Publish(page_bytes));
    }
    lw::PageMap published = working;  // the share
    benchmark::DoNotOptimize(published.Get(0));
  }
  state.SetLabel(kind == lw::PageMapKind::kFlat ? "flat" : "radix");
}
BENCHMARK(BM_Share)
    ->Args({0, 1})
    ->Args({0, 64})
    ->Args({0, 4096})
    ->Args({1, 1})
    ->Args({1, 64})
    ->Args({1, 4096});

void BM_Diff(benchmark::State& state) {
  auto kind = state.range(0) == 0 ? lw::PageMapKind::kFlat : lw::PageMapKind::kRadix;
  uint32_t dirty = static_cast<uint32_t>(state.range(1));
  lw::PageStore store;
  lw::PageMap base = MakeBase(kind, &store);
  uint8_t page_bytes[lw::kPageSize] = {1};
  lw::Rng rng(8);

  lw::PageMap sibling = base;
  for (uint32_t i = 0; i < dirty; ++i) {
    sibling.Set(rng.Next() % kPages, store.Publish(page_bytes));
  }

  uint64_t differing = 0;
  for (auto _ : state) {
    differing = 0;
    base.Diff(sibling, [&differing](uint32_t, const lw::PageRef&, const lw::PageRef&) {
      ++differing;
    });
    benchmark::DoNotOptimize(differing);
  }
  state.SetLabel(kind == lw::PageMapKind::kFlat ? "flat" : "radix");
  state.counters["differing_pages"] = static_cast<double>(differing);
}
BENCHMARK(BM_Diff)
    ->Args({0, 1})
    ->Args({0, 64})
    ->Args({0, 4096})
    ->Args({1, 1})
    ->Args({1, 64})
    ->Args({1, 4096});

// Retained-structure bytes across a chain of snapshots, each dirtying 16 pages:
// flat duplicates the whole table per snapshot; radix shares spines.
void BM_TreeBytes(benchmark::State& state) {
  auto kind = state.range(0) == 0 ? lw::PageMapKind::kFlat : lw::PageMapKind::kRadix;
  lw::PageStore store;
  uint8_t page_bytes[lw::kPageSize] = {1};
  lw::Rng rng(9);

  size_t retained = 0;
  for (auto _ : state) {
    std::vector<lw::PageMap> chain;
    lw::PageMap working = MakeBase(kind, &store);
    for (int snapshot = 0; snapshot < 256; ++snapshot) {
      for (int i = 0; i < 16; ++i) {
        working.Set(rng.Next() % kPages, store.Publish(page_bytes));
      }
      chain.push_back(working);
    }
    retained = 0;
    std::unordered_set<const void*> seen;  // dedupes radix nodes shared across maps
    for (const lw::PageMap& map : chain) {
      retained += map.UniqueStructureBytes(&seen);
    }
    benchmark::DoNotOptimize(retained);
  }
  state.SetLabel(kind == lw::PageMapKind::kFlat ? "flat" : "radix");
  state.counters["retained_map_bytes"] = static_cast<double>(retained);
}
BENCHMARK(BM_TreeBytes)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
