#!/usr/bin/env bash
# Perf-smoke driver: runs the gated benchmark rows — the single source of
# truth for what the CI perf-smoke job measures — and checks them against the
# checked-in bench/baseline.json (>25% normalized regression fails; see
# check_regression.py for the comparison model). Writes BENCH_ci.json (the CI
# artifact) into the current directory.
#
# Usage:
#   bench/run_perf_smoke.sh <bench-build-dir>          # gate against baseline
#   bench/run_perf_smoke.sh <bench-build-dir> --seed   # rewrite the baseline
#
# Env knobs: LWSNAP_PERF_REPS (default 5), LWSNAP_PERF_MAX_REGRESSION_PCT
# (default 25).
set -euo pipefail

BUILD_DIR=${1:?usage: bench/run_perf_smoke.sh <bench-build-dir> [--seed]}
MODE=${2:-gate}
HERE=$(cd "$(dirname "$0")" && pwd)
REPS=${LWSNAP_PERF_REPS:-5}
MAX_PCT=${LWSNAP_PERF_MAX_REGRESSION_PCT:-25}

# Gated rows. Small-but-representative: CoW + incremental primitive costs at
# a thin and a fat dirty set, the parallel-materialize sweep endpoints, the
# adaptive engine at the same two dirty sets, the restore-heavy E13 rows
# (serial + 4-worker endpoints for the coalesced-mprotect CoW path and the
# fan-out scan/adaptive paths), the E14 release-storm rows (per-ref and
# batched, so a regression in either reclamation path gates), the E11
# queens fixture plus its spill-budgeted variant, and the E15 fault-back
# microbenchmark at a thin and a fat spilled set (spill needs no capability
# probe — it is plain file I/O). Fast enough to repeat $REPS times;
# medians gate.
SNAPSHOT_FILTER='^BM_CowSnapshot/(8|512)/16$|^BM_IncrementalSnapshot/(8|512)/16$|^BM_AdaptiveSnapshot/(8|512)/16$|^BM_(Cow|Incremental)SnapshotParallel/512/16/(1|4)/|^BM_CowRestore/(64|512)/16/(1|4)/|^BM_IncrementalRestore/512/16/(1|4)/|^BM_AdaptiveRestore/64/16/(1|4)/|^BM_(Cow|Incremental|Adaptive)ReleaseStorm/64/(0|1)/'
STORE_FILTER='^BM_QueensParallelMaterialize(Spill)?/(1|4)/|^BM_SpillFaultback/(256|1024)$'

# Soft-dirty rows exist only on kernels that track soft-dirty PTE bits
# (CONFIG_MEM_SOFT_DIRTY); probe once and widen the filter when present. They
# gate like any other row when both baseline and run have them, and
# --optional-prefix below keeps baseline/run capability mismatches a warning
# instead of a failure (exit 2 = unsupported, anything else is a real error).
# The prefix covers both directions (BM_SoftDirtySnapshot and
# BM_SoftDirtyRestore).
SOFT_DIRTY_PREFIX=BM_SoftDirty
PROBE_STATUS=0
"$BUILD_DIR/bench_snapshot" --lwsnap_probe_soft_dirty || PROBE_STATUS=$?
if [ "$PROBE_STATUS" -eq 0 ]; then
  echo "soft-dirty rows: enabled"
  SNAPSHOT_FILTER="$SNAPSHOT_FILTER|^BM_SoftDirtySnapshot/(8|512)/16\$|^BM_SoftDirtyRestore/64/16/(1|4)/"
elif [ "$PROBE_STATUS" -eq 2 ]; then
  echo "soft-dirty rows: skipped (kernel lacks soft-dirty tracking)"
else
  echo "soft-dirty probe failed unexpectedly (exit $PROBE_STATUS)" >&2
  exit 1
fi

"$BUILD_DIR/bench_snapshot" \
  --benchmark_filter="$SNAPSHOT_FILTER" \
  --benchmark_repetitions="$REPS" \
  --benchmark_report_aggregates_only=true \
  --benchmark_format=json \
  --benchmark_out=BENCH_ci_snapshot.json

"$BUILD_DIR/bench_shared_store" \
  --benchmark_filter="$STORE_FILTER" \
  --benchmark_repetitions="$REPS" \
  --benchmark_report_aggregates_only=true \
  --benchmark_format=json \
  --benchmark_out=BENCH_ci_store.json

if [ "$MODE" = "--seed" ]; then
  python3 "$HERE/check_regression.py" \
    --write-baseline "$HERE/baseline.json" \
    BENCH_ci_snapshot.json BENCH_ci_store.json
else
  python3 "$HERE/check_regression.py" \
    --baseline "$HERE/baseline.json" \
    --output BENCH_ci.json \
    --max-regression-pct "$MAX_PCT" \
    --optional-prefix "$SOFT_DIRTY_PREFIX" \
    BENCH_ci_snapshot.json BENCH_ci_store.json
fi
