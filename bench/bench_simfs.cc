// E8 — immutable files (§3.1) and sound interposition (§5): simfs costs.
//
//   WriteOp/size_kb       — chunk-CoW write into a file of `size_kb` (cost is
//                           per touched chunk, not per file size)
//   SnapshotFs/files      — whole-FS snapshot with N live files (O(1): a
//                           persistent-map root copy)
//   RestoreFs/files       — whole-FS restore (also O(1) swap)
//   SnapshotChurn/files   — snapshot → mutate 1 file → restore cycles (the
//                           per-extension pattern of the interposition layer)
//   InterposedWrite       — the full io_* dispatcher path (policy + fd table)
//                           over the bare SimFs::WriteAt cost

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "src/interpose/guest_io.h"
#include "src/simfs/fs.h"

namespace {

void BM_WriteOp(benchmark::State& state) {
  size_t size_kb = static_cast<size_t>(state.range(0));
  lw::SimFs fs;
  auto ino = fs.Create("/f");
  std::string fill(size_kb * 1024, 'x');
  (void)fs.WriteAt(*ino, 0, fill.data(), fill.size());

  char payload[256] = {1};
  uint64_t offset = 0;
  for (auto _ : state) {
    // Overwrite a rotating 256-byte window: one or two chunk copies per op.
    auto n = fs.WriteAt(*ino, offset % (size_kb * 1024), payload, sizeof payload);
    benchmark::DoNotOptimize(n.ok());
    offset += 4096;
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * sizeof(payload)));
}
BENCHMARK(BM_WriteOp)->Arg(4)->Arg(64)->Arg(1024)->Arg(16384);

lw::SimFs* PopulatedFs(int files) {
  auto* fs = new lw::SimFs();
  std::string data(2048, 'd');
  for (int i = 0; i < files; ++i) {
    std::string path = "/f" + std::to_string(i);
    auto ino = fs->Create(path);
    (void)fs->WriteAt(*ino, 0, data.data(), data.size());
  }
  return fs;
}

void BM_SnapshotFs(benchmark::State& state) {
  lw::SimFs* fs = PopulatedFs(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    lw::SimFs::State snap = fs->TakeSnapshot();
    benchmark::DoNotOptimize(snap.valid());
  }
  delete fs;
}
BENCHMARK(BM_SnapshotFs)->Arg(1)->Arg(64)->Arg(1024)->Arg(8192);

void BM_RestoreFs(benchmark::State& state) {
  lw::SimFs* fs = PopulatedFs(static_cast<int>(state.range(0)));
  lw::SimFs::State snap = fs->TakeSnapshot();
  for (auto _ : state) {
    fs->Restore(snap);
  }
  delete fs;
}
BENCHMARK(BM_RestoreFs)->Arg(1)->Arg(64)->Arg(1024)->Arg(8192);

void BM_SnapshotChurn(benchmark::State& state) {
  lw::SimFs* fs = PopulatedFs(static_cast<int>(state.range(0)));
  auto ino = fs->Lookup("/f0");
  char payload[64] = {7};
  for (auto _ : state) {
    lw::SimFs::State snap = fs->TakeSnapshot();
    (void)fs->WriteAt(*ino, 0, payload, sizeof payload);
    fs->Restore(snap);
  }
  delete fs;
}
BENCHMARK(BM_SnapshotChurn)->Arg(64)->Arg(8192);

void BM_BareWriteAt(benchmark::State& state) {
  lw::SimFs fs;
  auto ino = fs.Create("/f");
  char payload[64] = {3};
  for (auto _ : state) {
    auto n = fs.WriteAt(*ino, 0, payload, sizeof payload);
    benchmark::DoNotOptimize(n.ok());
  }
}
BENCHMARK(BM_BareWriteAt);

void BM_InterposedWrite(benchmark::State& state) {
  lw::SimFs fs;
  lw::GuestIo io(&fs, lw::InterposePolicy::SoundMinimal());
  lw::ScopedGuestIo scoped(&io);
  int fd = lw::io_open("/f", lw::kOpenRead | lw::kOpenWrite | lw::kOpenCreate);
  char payload[64] = {3};
  for (auto _ : state) {
    (void)lw::io_pwrite(fd, payload, sizeof payload, 0);
  }
  state.counters["denied"] = static_cast<double>(io.stats().TotalDenied());
}
BENCHMARK(BM_InterposedWrite);

void BM_DeniedSyscall(benchmark::State& state) {
  lw::SimFs fs;
  lw::GuestIo io(&fs, lw::InterposePolicy::SoundMinimal());
  lw::ScopedGuestIo scoped(&io);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lw::io_socket());  // fail-closed path cost
  }
}
BENCHMARK(BM_DeniedSyscall);

}  // namespace

BENCHMARK_MAIN();
